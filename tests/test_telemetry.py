"""Tests for the unified telemetry layer.

Covers the metrics registry, ring buffers, trace-bus robustness fixes,
the event-loop profiler (including the disabled-path overhead bound),
run manifests, JSONL trace export, per-flow/queue recorders, and — most
importantly — that attaching telemetry does not change what a run
measures (bit-identical ``RunMetrics``).
"""

import dataclasses
import io
import json

import pytest

from repro.errors import ConfigError
from repro.experiments.config import CellResult, ExperimentConfig, QueueSetup
from repro.experiments.runner import run_cell
from repro.sim import Simulator, Tracer
from repro.stats.collect import RunMetrics
from repro.telemetry import (
    Counter,
    FlowTimelineRecorder,
    Gauge,
    Histogram,
    LoopProfiler,
    MANIFEST_SCHEMA,
    MetricsRegistry,
    ProgressReporter,
    RingBuffer,
    Telemetry,
    TraceJsonlWriter,
    build_manifest,
    metric_key,
    record_to_row,
)
from repro.telemetry.profiler import callback_category
from repro.units import us

TINY = 0.03125  # 8 MB Terasort: sub-second cells


def _red50_config(**kw):
    """A small cell that provably drops, marks, and delivers packets."""
    return ExperimentConfig(
        queue=QueueSetup(kind="red", target_delay_s=us(50)),
        allow_timeout=True,
        **kw,
    ).scaled(TINY)


def _default_config():
    return ExperimentConfig(
        queue=QueueSetup(kind="red", target_delay_s=us(500)),
    ).scaled(TINY)


# ---------------------------------------------------------------------------
# registry


class TestMetricKey:
    def test_no_labels(self):
        assert metric_key("queue.drops", {}) == "queue.drops"

    def test_labels_sorted(self):
        assert (metric_key("x", {"b": "2", "a": "1"})
                == metric_key("x", {"a": "1", "b": "2"})
                == "x{a=1,b=2}")


class TestCounter:
    def test_increments(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("c").inc(-1)


class TestGauge:
    def test_push(self):
        g = Gauge("g")
        g.set(3.5)
        assert g.value == 3.5

    def test_pull(self):
        state = {"v": 0}
        g = Gauge("g", fn=lambda: state["v"])
        state["v"] = 7
        assert g.value == 7.0

    def test_set_on_pull_based_raises(self):
        g = Gauge("g", fn=lambda: 1)
        with pytest.raises(ValueError, match="pull-based"):
            g.set(2)


class TestHistogram:
    def test_mean_and_count(self):
        h = Histogram("h")
        for v in (0.001, 0.002, 0.003):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(0.002)
        assert h.max_value == 0.003

    def test_percentile_within_bin_error(self):
        h = Histogram("h", lo=1e-6, hi=1.0, n_bins=400)
        for i in range(1, 1001):
            h.observe(i / 1000.0)
        # log-spaced bins: relative error bounded by the bin ratio (~3.5%)
        assert h.percentile(50) == pytest.approx(0.5, rel=0.1)
        assert h.percentile(99) == pytest.approx(0.99, rel=0.1)

    def test_under_overflow_bins(self):
        h = Histogram("h", lo=1e-3, hi=1.0, n_bins=10)
        h.observe(1e-9)
        h.observe(50.0)
        assert h.count == 2
        assert h.percentile(1) == h.lo
        assert h.percentile(100) == 50.0

    def test_to_dict_keys(self):
        d = Histogram("h").to_dict()
        assert set(d) == {"count", "mean", "p50", "p99", "max"}

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", lo=0.0)
        with pytest.raises(ValueError):
            Histogram("h", lo=1.0, hi=0.5)


class TestMetricsRegistry:
    def test_get_or_create_shares_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("drops", queue="p0")
        b = reg.counter("drops", queue="p0")
        assert a is b
        a.inc()
        assert reg.counter("drops", queue="p0").value == 1

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_snapshot_shape_and_order(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.gauge("a").set(1.0)
        reg.histogram("c").observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"b": 2}
        assert snap["gauges"] == {"a": 1.0}
        assert snap["histograms"]["c"]["count"] == 1
        json.loads(json.dumps(snap))  # JSON-safe

    def test_collector_runs_at_snapshot(self):
        reg = MetricsRegistry()
        reg.add_collector(lambda r: r.gauge("pushed").set(9.0))
        assert reg.snapshot()["gauges"]["pushed"] == 9.0

    def test_find_prefix(self):
        reg = MetricsRegistry()
        reg.counter("queue.drops", queue="p0")
        reg.counter("queue.marks", queue="p0")
        reg.counter("tcp.retx")
        assert [k for k, _ in reg.find("queue.")] == [
            "queue.drops{queue=p0}", "queue.marks{queue=p0}"]


# ---------------------------------------------------------------------------
# ring buffers


class TestRingBuffer:
    def test_bounded_eviction(self):
        rb = RingBuffer(3)
        for i in range(5):
            rb.append(i)
        assert list(rb) == [2, 3, 4]
        assert len(rb) == rb.capacity == 3
        assert rb.dropped == 2

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0)


# ---------------------------------------------------------------------------
# tracer robustness (satellites 1 and 2)


class TestTracerRobustness:
    def test_of_kind_without_record_all_raises(self):
        tr = Tracer()
        tr.emit(0.0, "drop", "p", None)
        with pytest.raises(ValueError, match="record_all"):
            tr.of_kind("drop")

    def test_of_kind_with_record_all(self):
        tr = Tracer(record_all=True)
        tr.emit(0.0, "drop", "p", None)
        tr.emit(0.0, "mark", "p", None)
        assert len(tr.of_kind("drop")) == 1

    def test_unsubscribe_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="no subscribers for kind 'nope'"):
            Tracer().unsubscribe("nope", lambda r: None)

    def test_unsubscribe_unknown_fn_raises(self):
        tr = Tracer()
        tr.subscribe("drop", lambda r: None)
        with pytest.raises(ValueError, match="not subscribed to kind 'drop'"):
            tr.unsubscribe("drop", lambda r: None)

    def test_unsubscribe_last_fn_clears_wants(self):
        tr = Tracer()
        fn = lambda r: None  # noqa: E731
        tr.subscribe("drop", fn)
        assert tr.wants("drop")
        tr.unsubscribe("drop", fn)
        assert not tr.wants("drop")


# ---------------------------------------------------------------------------
# profiler


class TestCallbackCategory:
    def test_method(self):
        assert callback_category(Simulator.run) == "Simulator.run"

    def test_closure_lambda_accounts_to_enclosing_scope(self):
        # qualname "...test_closure...<locals>.outer.<locals>.<lambda>"
        # collapses to everything before the first ".<locals>".
        def outer():
            return lambda: None

        assert callback_category(outer()) == (
            "TestCallbackCategory."
            "test_closure_lambda_accounts_to_enclosing_scope"
        )

    def test_no_qualname_falls_back_to_type(self):
        class Cb:
            def __call__(self):  # pragma: no cover - never invoked
                pass

        cb = Cb()
        assert callback_category(cb) == "Cb"


class TestLoopProfiler:
    def test_report_fields(self):
        sim = Simulator()
        prof = LoopProfiler().attach(sim)
        for i in range(100):
            sim.schedule(i * 1e-3, lambda: None)
        sim.run()
        rep = prof.finish()
        assert rep["events"] == 100
        assert rep["events_per_s"] > 0
        assert rep["heap_high_water"] == 100
        assert rep["sim_wall_ratio"] > 0
        assert sim.profiler is None
        assert sum(c["events"] for c in rep["categories"].values()) == 100

    def test_double_attach_raises(self):
        sim = Simulator()
        prof = LoopProfiler().attach(sim)
        with pytest.raises(ValueError, match="already attached"):
            prof.attach(sim)

    def test_render_mentions_headline_numbers(self):
        sim = Simulator()
        prof = LoopProfiler().attach(sim)
        sim.schedule(0.0, lambda: None)
        sim.run()
        prof.finish()
        text = prof.render()
        assert "events/sec" in text
        assert "heap high-water" in text

    def test_disabled_path_overhead_bound(self):
        """With no profiler the dispatch loop stays fast (one branch/event)."""
        import time

        sim = Simulator()
        n = 50_000
        for i in range(n):
            sim.schedule(i * 1e-6, lambda: None)
        t0 = time.perf_counter()
        sim.run()
        per_event = (time.perf_counter() - t0) / n
        assert sim.profiler is None
        # Generous CI-safe ceiling; the loop itself measures ~1 µs/event.
        assert per_event < 50e-6, f"{per_event * 1e6:.1f} µs/event"

    def test_heap_high_water_tracked_without_profiler(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(i * 1e-3, lambda: None)
        assert sim.heap_high_water == 10
        sim.run()
        assert sim.heap_high_water == 10


class TestProgressReporter:
    def test_prints_progress_and_eta(self):
        buf = io.StringIO()
        progress = ProgressReporter(stream=buf)
        progress(1, 4, "cell-a")
        progress(4, 4, "cell-d")
        out = buf.getvalue()
        assert "[  1/4] cell-a" in out
        assert "[  4/4] cell-d" in out

    def test_min_interval_throttles_but_keeps_final(self):
        buf = io.StringIO()
        progress = ProgressReporter(stream=buf, min_interval_s=3600.0)
        progress(1, 3, "a")
        progress(2, 3, "b")
        progress(3, 3, "c")
        out = buf.getvalue()
        assert "b" not in out
        assert "c" in out  # final tick always printed


# ---------------------------------------------------------------------------
# determinism: telemetry must not change what a run measures


class TestDeterminism:
    def test_telemetry_on_off_bit_identical_metrics(self):
        cfg = _default_config()
        plain = run_cell(cfg)
        tel = Telemetry(profile=True, flow_timelines=True,
                        queue_interval_s=2e-3)
        TraceJsonlWriter(tel.tracer)  # subscribe packet kinds too
        observed = run_cell(cfg, telemetry=tel)
        assert dataclasses.asdict(plain.metrics) == dataclasses.asdict(
            observed.metrics)

    def test_repeat_run_reproducible(self):
        a, b = run_cell(_default_config()), run_cell(_default_config())
        assert dataclasses.asdict(a.metrics) == dataclasses.asdict(b.metrics)


# ---------------------------------------------------------------------------
# manifests


class TestManifest:
    def test_cell_manifest_round_trips(self):
        cell = run_cell(_default_config())
        m = json.loads(json.dumps(cell.manifest))
        assert m["schema"] == MANIFEST_SCHEMA
        assert m["kind"] == "cell"
        assert m["label"] == cell.config.label()
        assert m["seed"] == 42
        assert m["config"]["queue"]["kind"] == "red"
        assert m["config"]["variant"] == "tcp-ecn"
        assert m["timings"]["wall_s"] > 0
        assert m["timings"]["events"] > 0
        assert m["metrics"]["runtime"] == cell.metrics.runtime
        assert m["metrics"]["throughput_per_node_bps"] > 0
        assert "telemetry" not in m  # no session attached

    def test_manifest_includes_telemetry_and_profile(self):
        tel = Telemetry(profile=True)
        cell = run_cell(_default_config(), telemetry=tel)
        m = cell.manifest
        assert m["profile"]["events"] == m["timings"]["events"]
        assert m["profile"]["heap_high_water"] > 0
        gauges = m["telemetry"]["gauges"]
        assert any(k.startswith("queue.marks") for k in gauges)
        assert gauges["mapreduce.reduces_done"] == 16.0
        json.loads(json.dumps(m))

    def test_write_manifest(self, tmp_path):
        cell = run_cell(_default_config())
        path = str(tmp_path / "manifest.json")
        assert cell.write_manifest(path) == path
        with open(path) as fh:
            assert json.load(fh)["schema"] == MANIFEST_SCHEMA

    def test_write_manifest_without_manifest_raises(self):
        res = CellResult(config=_default_config(), metrics=RunMetrics())
        with pytest.raises(ConfigError, match="no manifest"):
            res.write_manifest("unused.json")

    def test_build_manifest_zero_wall_guard(self):
        m = build_manifest(_default_config(), RunMetrics(), wall_s=0.0,
                           events=0)
        assert m["timings"]["sim_wall_ratio"] == 0.0


# ---------------------------------------------------------------------------
# JSONL trace export


class TestTraceExport:
    def test_trace_contains_drop_mark_deliver(self):
        tel = Telemetry()
        writer = TraceJsonlWriter(tel.tracer,
                                  kinds=("drop", "mark", "deliver"))
        run_cell(_red50_config(), telemetry=tel)
        rows = [json.loads(line) for line in writer.getvalue().splitlines()]
        kinds = {r["kind"] for r in rows}
        assert kinds == {"drop", "mark", "deliver"}
        for r in rows:
            assert set(r) >= {"t", "kind", "where", "src", "sport", "dst",
                              "dport", "seq", "ack", "payload", "size",
                              "flags", "ecn"}
        assert rows == sorted(rows, key=lambda r: r["t"])

    def test_kind_filter(self):
        tel = Telemetry()
        writer = TraceJsonlWriter(tel.tracer, kinds=("drop",))
        run_cell(_red50_config(), telemetry=tel)
        assert writer.rows_written > 0
        assert {json.loads(line)["kind"]
                for line in writer.getvalue().splitlines()} == {"drop"}

    def test_external_stream_and_detach(self):
        tr = Tracer()
        buf = io.StringIO()
        writer = TraceJsonlWriter(tr, out=buf, kinds=("drop",))
        tr.emit(1.0, "drop", "p0", None)
        writer.detach()
        writer.detach()  # idempotent
        tr.emit(2.0, "drop", "p0", None)
        assert buf.getvalue().count("\n") == 1
        with pytest.raises(ValueError, match="external stream"):
            writer.getvalue()

    def test_record_to_row_dict_payload(self):
        from repro.sim.trace import TraceRecord

        row = record_to_row(TraceRecord(1.0, "tcp.cwnd", "f0", {"cwnd": 3}))
        assert row == {"t": 1.0, "kind": "tcp.cwnd", "where": "f0", "cwnd": 3}

    def test_record_to_row_unknown_payload_reprs(self):
        from repro.sim.trace import TraceRecord

        row = record_to_row(TraceRecord(1.0, "x", "p", object()))
        assert "data" in row


# ---------------------------------------------------------------------------
# recorders


class TestFlowTimelineRecorder:
    def test_records_tcp_timeline(self):
        tel = Telemetry(flow_timelines=True)
        run_cell(_red50_config(), telemetry=tel)
        rec = tel.flow_recorder
        assert rec is not None and rec.events_seen > 0
        rows = rec.rows()
        kinds = {r["kind"] for r in rows}
        assert "tcp.cwnd" in kinds
        assert rows == sorted(rows, key=lambda r: r["t"])
        # cwnd rows carry the congestion-control state
        cwnd = next(r for r in rows if r["kind"] == "tcp.cwnd")
        assert {"cwnd", "ssthresh", "rto", "state"} <= set(cwnd)
        # per-flow retrieval matches the per-flow buffer
        flow = next(iter(rec.flows))
        assert rec.rows(flow) == list(rec.flows[flow])

    def test_unknown_flow_raises(self):
        rec = FlowTimelineRecorder(Tracer())
        with pytest.raises(ValueError, match="no timeline recorded"):
            rec.rows("nope")

    def test_export_jsonl(self):
        tr = Tracer()
        rec = FlowTimelineRecorder(tr, capacity_per_flow=8)
        tr.emit(1.0, "tcp.retx", "f0", {"seq": 5})
        buf = io.StringIO()
        assert rec.export_jsonl(buf) == 1
        assert json.loads(buf.getvalue())["seq"] == 5

    def test_ring_bound_per_flow(self):
        tr = Tracer()
        rec = FlowTimelineRecorder(tr, capacity_per_flow=4)
        for i in range(10):
            tr.emit(float(i), "tcp.cwnd", "f0", {"cwnd": i})
        assert len(rec.flows["f0"]) == 4
        assert rec.flows["f0"].dropped == 6


class TestQueueTimelineRecorder:
    def test_samples_and_exports(self):
        tel = Telemetry(queue_interval_s=2e-3)
        cell = run_cell(_red50_config(), telemetry=tel)
        rec = tel.queue_recorder
        assert rec is not None
        rows = rec.rows()
        assert rows, "expected queue samples"
        assert {"t", "queue", "qlen_packets", "ect_data",
                "pure_acks"} <= set(rows[0])
        # the recorder's snapshots feed CellResult.snapshots (dedup path)
        assert cell.snapshots == rec.snapshots()
        buf = io.StringIO()
        assert rec.export_jsonl(buf) == len(rows)
        csv_buf = io.StringIO()
        assert rec.export_csv(csv_buf) == len(rows)
        assert csv_buf.getvalue().startswith("t,")

    def test_queue_sample_rides_the_tracer(self):
        tel = Telemetry(queue_interval_s=2e-3)
        seen = []
        tel.tracer.subscribe("queue.sample", seen.append)
        run_cell(_red50_config(), telemetry=tel)
        assert seen
        assert all(r.kind == "queue.sample" for r in seen)


class TestQueueMonitorIntegration:
    def test_monitor_registers_and_bounds(self):
        from repro.core.droptail import DropTail
        from repro.core.monitor import QueueMonitor
        from repro.net.packet import Packet

        sim = Simulator()
        q = DropTail(10, name="q0")
        mon = QueueMonitor(sim, q, 0.001, max_samples=5)
        mon.start()
        q.enqueue(Packet(src=0, sport=1, dst=1, dport=2, payload=100), 0.0)
        sim.run(until=0.02)
        assert len(mon.snapshots) == 5  # bounded retention
        reg = MetricsRegistry()
        mon.register_metrics(reg)
        snap = reg.snapshot()
        assert snap["gauges"]["monitor.samples{queue=q0}"] == 5.0
        buf = io.StringIO()
        assert mon.export_jsonl(buf) == 5


# ---------------------------------------------------------------------------
# registry wiring through the stack


class TestTelemetrySession:
    def test_registry_sees_every_layer(self):
        tel = Telemetry()
        run_cell(_default_config(), telemetry=tel)
        snap = tel.snapshot()
        gauges = snap["gauges"]
        prefixes = {"queue.", "port.", "host.", "mapreduce."}
        for prefix in prefixes:
            assert any(k.startswith(prefix) for k in gauges), prefix
        # pull gauges reflect the final state of the run
        marks = sum(v for k, v in gauges.items()
                    if k.startswith("queue.marks"))
        assert marks > 0

    def test_tcp_sender_register_metrics(self):
        from repro.net.topology import build_single_rack
        from repro.tcp.endpoint import TcpConfig, TcpListener
        from repro.tcp.flow import start_bulk_flow

        from repro.core.droptail import DropTail

        sim = Simulator()
        spec = build_single_rack(
            sim, 2, switch_qdisc=lambda name: DropTail(100, name=name))
        cfg = TcpConfig()
        TcpListener(sim, spec.hosts[1], 50060, cfg)
        flow = start_bulk_flow(sim, spec.hosts[0], spec.hosts[1], 50060,
                               100_000, cfg)
        reg = MetricsRegistry()
        flow.sender.register_metrics(reg)
        sim.run(until=5.0)
        assert flow.result is not None and not flow.result.failed
        sent = [v for k, v in reg.snapshot()["gauges"].items()
                if k.startswith("tcp.data_packets_sent")]
        assert len(sent) == 1 and sent[0] > 0


# ---------------------------------------------------------------------------
# retention accounting: wrapped rings must be visible in the registry


class TestRecorderRetentionGauges:
    def test_flow_recorder_counts_drops_across_flows(self):
        tr = Tracer()
        rec = FlowTimelineRecorder(tr, capacity_per_flow=4)
        for i in range(10):
            tr.emit(float(i), "tcp.cwnd", "f0", {"cwnd": i})
        for i in range(3):
            tr.emit(float(i), "tcp.cwnd", "f1", {"cwnd": i})
        assert rec.dropped_total() == 6
        assert rec.wrapped_flows() == 1
        reg = MetricsRegistry()
        rec.register_metrics(reg)
        gauges = reg.snapshot()["gauges"]
        assert gauges["telemetry.flow_rows_dropped"] == 6.0
        assert gauges["telemetry.flow_rings_wrapped"] == 1.0
        assert gauges["telemetry.flow_events_seen"] == 13.0

    def test_wrapped_rings_surface_in_run_manifest(self):
        # a deliberately tiny ring: the run records far more samples and
        # events than it retains, and the manifest must say so
        tel = Telemetry(flow_timelines=True, queue_interval_s=1e-3,
                        ring_capacity=8)
        cell = run_cell(_red50_config(), telemetry=tel)
        gauges = cell.manifest["telemetry"]["gauges"]
        assert gauges["telemetry.flow_rows_dropped"] > 0
        assert gauges["telemetry.queue_samples_dropped"] > 0
        assert gauges["telemetry.queue_rings_wrapped"] >= 1.0
        assert gauges["telemetry.flow_rows_dropped"] == float(
            tel.flow_recorder.dropped_total())
        assert gauges["telemetry.queue_samples_dropped"] == float(
            tel.queue_recorder.dropped_total())

    def test_unwrapped_rings_report_zero(self):
        # The red50 cell runs tens of simulated seconds (RFC-correct
        # Non-ECT retransmits blackhole through the unprotected RED
        # bottleneck), so size the rings for the full sample series.
        tel = Telemetry(flow_timelines=True, queue_interval_s=2e-3,
                        ring_capacity=65536)
        cell = run_cell(_red50_config(), telemetry=tel)
        gauges = cell.manifest["telemetry"]["gauges"]
        assert gauges["telemetry.flow_rows_dropped"] == 0.0
        assert gauges["telemetry.queue_samples_dropped"] == 0.0


# ---------------------------------------------------------------------------
# CSV writer: RFC 4180 quoting, missing keys, stable line endings


class TestWriteCsv:
    def test_special_characters_round_trip(self):
        import csv as csv_mod

        from repro.telemetry import write_csv

        rows = [
            {"label": "a,b", "note": 'say "hi"', "n": 1},
            {"label": "line1\nline2", "note": "plain", "n": 2},
        ]
        buf = io.StringIO()
        assert write_csv(rows, buf) == 2
        back = list(csv_mod.DictReader(io.StringIO(buf.getvalue())))
        assert back[0]["label"] == "a,b"
        assert back[0]["note"] == 'say "hi"'
        assert back[1]["label"] == "line1\nline2"

    def test_missing_keys_emit_empty_fields(self):
        from repro.telemetry import write_csv

        buf = io.StringIO()
        write_csv([{"a": 1, "b": 2}, {"a": 3}], buf)
        lines = buf.getvalue().split("\n")
        assert lines[0] == "a,b"
        assert lines[2] == "3,"  # not "3,None"

    def test_unix_line_endings_everywhere(self):
        from repro.telemetry import write_csv

        buf = io.StringIO()
        write_csv([{"a": 1}, {"a": 2}], buf)
        assert "\r" not in buf.getvalue()
        assert buf.getvalue().endswith("2\n")

    def test_empty_rows_write_nothing(self):
        from repro.telemetry import write_csv

        buf = io.StringIO()
        assert write_csv([], buf) == 0
        assert buf.getvalue() == ""


# ---------------------------------------------------------------------------
# progress across consecutive batches (bifurcation refinement rounds)


class TestProgressReporterBatches:
    def test_counts_accumulate_across_batches(self):
        buf = io.StringIO()
        progress = ProgressReporter(stream=buf)
        # initial grid of 3 cells...
        progress(1, 3, "a")
        progress(2, 3, "b")
        progress(3, 3, "c")
        # ...then two single-cell refinement batches
        progress(1, 1, "mid1")
        progress(1, 1, "mid2")
        out = buf.getvalue()
        assert "[  4/4] mid1" in out
        assert "[  5/5] mid2" in out
        assert "[  1/1]" not in out
        assert progress.done == 5

    def test_cached_exclusion_survives_batches(self):
        buf = io.StringIO()
        progress = ProgressReporter(stream=buf)
        progress(1, 2, "a" + ProgressReporter.CACHED_SUFFIX)
        progress(2, 2, "b" + ProgressReporter.CACHED_SUFFIX)
        progress(1, 1, "fresh")
        assert progress.cached == 2
        assert progress.done == 3
        assert "(2 cached)" in buf.getvalue()

    def test_single_batch_behaviour_unchanged(self):
        buf = io.StringIO()
        progress = ProgressReporter(stream=buf)
        progress(1, 4, "cell-a")
        progress(4, 4, "cell-d")
        out = buf.getvalue()
        assert "[  1/4] cell-a" in out
        assert "[  4/4] cell-d" in out
