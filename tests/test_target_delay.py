"""Tests for the target-delay -> threshold conversion."""

import pytest

from repro.core import ProtectionMode, red_params_for_target_delay, threshold_packets
from repro.errors import ConfigError
from repro.units import gbps, ms, us


class TestThresholdPackets:
    def test_500us_at_1gbps(self):
        # 500us * 1e9 b/s / (8 * 1500 B) = 41.7 -> 42 packets
        assert threshold_packets(us(500), gbps(1)) == 42

    def test_dctcp_canonical_65_packets(self):
        # The DCTCP paper's recommendation: 65 packets at 10 Gbps is the
        # threshold for ~78 us of target delay.
        k = threshold_packets(78e-6, gbps(10))
        assert k == 65

    def test_minimum_one_packet(self):
        assert threshold_packets(us(1), gbps(1)) == 1

    def test_scales_linearly_with_rate(self):
        # 1.2 ms at 1 Gbps is exactly 100 packets of 1500 B.
        assert threshold_packets(ms(1.2), gbps(1)) == 100
        assert threshold_packets(ms(1.2), gbps(2)) == 200

    def test_custom_packet_size(self):
        big = threshold_packets(ms(1.2), gbps(1), mean_pktsize=3000)
        small = threshold_packets(ms(1.2), gbps(1), mean_pktsize=1500)
        assert (big, small) == (50, 100)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            threshold_packets(0, gbps(1))
        with pytest.raises(ConfigError):
            threshold_packets(ms(1), 0)


class TestRedParamsForTargetDelay:
    def test_band_shape(self):
        p = red_params_for_target_delay(us(500), gbps(1))
        assert p.min_th == 42
        assert p.max_th == 126
        assert p.gentle
        assert p.ecn
        assert not p.use_instantaneous

    def test_dctcp_style_collapses_thresholds(self):
        p = red_params_for_target_delay(us(500), gbps(1), dctcp_style=True)
        assert p.min_th == p.max_th == 42
        assert p.use_instantaneous
        assert not p.gentle

    def test_protection_passthrough(self):
        p = red_params_for_target_delay(
            us(100), gbps(1), protection=ProtectionMode.ACK_SYN
        )
        assert p.protection is ProtectionMode.ACK_SYN

    def test_result_is_validated(self):
        # Must not raise for any sane input.
        for d in (us(50), us(100), ms(1), ms(10)):
            red_params_for_target_delay(d, gbps(1)).validate()
