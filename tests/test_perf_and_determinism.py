"""Hot-path overhaul guarantees: heap equivalence, determinism, bench.

The event-core optimizations (tuple-subclass handles, lazy-cancel
compaction, bound-method transmit path, fused RED enqueue/dequeue) are
only admissible because they are *observationally invisible*: not a
single event may fire in a different order, and back-to-back runs in one
process must produce byte-identical traces. These tests pin those
guarantees down, alongside the ``repro.perf`` bench harness that
measures the speedups.
"""

import heapq
import json
import random
from functools import partial

import pytest

from repro.core.droptail import DropTail
from repro.core.protection import ProtectionMode
from repro.errors import TopologyError
from repro.experiments.config import (
    SHALLOW_BUFFER_PACKETS,
    ExperimentConfig,
    QueueSetup,
)
from repro.experiments.runner import run_cell
from repro.net.packet import FLAG_ACK, PacketPool
from repro.net.port import Port
from repro.perf.bench import (
    SCHEMA,
    canonical_cells,
    compare_to_baseline,
    default_bench_path,
    render_compare,
    render_report,
    run_bench,
    write_bench,
)
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.tcp.endpoint import TcpVariant
from repro.telemetry import Telemetry
from repro.telemetry.profiler import callback_category
from repro.units import us


# ---------------------------------------------------------------------------
# Reference kernel: the dumbest possible correct implementation.
# ---------------------------------------------------------------------------

class _RefHandle:
    __slots__ = ("cancelled",)

    def __init__(self):
        self.cancelled = False

    def cancel(self):
        self.cancelled = True


class _RefSim:
    """heapq of (time, seq, callback) tuples, no compaction, no tricks."""

    def __init__(self):
        self.now = 0.0
        self._heap = []
        self._seq = 0

    def schedule(self, delay, callback):
        self._seq += 1
        handle = _RefHandle()
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback, handle))
        return handle

    def run(self):
        while self._heap:
            time, _seq, callback, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.now = time
            callback()


def _churn(sim, order, n_ops=600, seed=1234):
    """Drive a kernel through deterministic schedule/cancel/fire churn.

    Delays are drawn from a coarse grid so same-instant ties (the FIFO
    tie-break) occur constantly; callbacks themselves schedule follow-up
    events and cancel earlier ones, so cancellation interleaves with
    dispatch exactly like retransmission-timer churn does.
    """
    rng = random.Random(seed)
    live = []

    def fire(label):
        order.append((round(sim.now, 9), label))
        r = rng.random()
        if r < 0.35:
            live.append(sim.schedule(rng.randrange(1, 40) * 1e-4, partial(fire, label + 100000)))
        if r < 0.25 and live:
            live.pop(rng.randrange(len(live))).cancel()

    for i in range(n_ops):
        live.append(sim.schedule(rng.randrange(1, 40) * 1e-4, partial(fire, i)))
        if rng.random() < 0.45 and live:
            live.pop(rng.randrange(len(live))).cancel()
    sim.run()


class TestHeapEquivalence:
    def test_churn_order_matches_reference(self):
        """Optimized kernel fires the exact same (time, label) sequence as
        the reference heapq-of-tuples under cancel/reschedule churn."""
        ref_order, opt_order = [], []
        _churn(_RefSim(), ref_order)
        _churn(Simulator(), opt_order)
        assert opt_order == ref_order
        assert len(opt_order) > 300  # the scenario actually fired things

    def test_churn_exercises_compaction(self):
        """The churn load is heavy enough to cross the compaction
        threshold — otherwise the equivalence test proves nothing about it."""
        sim = Simulator()
        _churn(sim, [])
        assert sim.heap_high_water > 64  # compaction-eligible heap depth

    def test_compaction_keeps_counters_truthful(self):
        sim = Simulator()
        fired = []
        handles = [sim.schedule(1e-3 * (i + 1), lambda i=i: fired.append(i))
                   for i in range(200)]
        assert sim.pending_events == 200
        for h in handles[:150]:
            h.cancel()
        # Compaction must have purged cancelled entries: the heap holds the
        # 50 live handles plus at most half-a-heap of dead ones, and the
        # cancelled counter agrees with what is actually in the heap.
        assert sim.pending_events < 200
        assert sim.pending_events - sim.cancelled_pending == 50
        assert sim.heap_high_water == 200  # running max never lowered
        sim.run()
        assert len(fired) == 50
        assert sim.pending_events == 0
        assert sim.cancelled_pending == 0
        assert sim.events_processed == 50


# ---------------------------------------------------------------------------
# Back-to-back determinism (per-run packet ids).
# ---------------------------------------------------------------------------

def _traced_cell_run(config):
    """Run one cell recording (time, pkt_id) of every delivered packet."""
    deliveries = []
    tracer = Tracer()
    tracer.subscribe(
        "deliver", lambda rec: deliveries.append((rec.time, rec.data.pkt_id)))
    cell = run_cell(config, telemetry=Telemetry(tracer=tracer))
    m = cell.metrics
    return deliveries, (m.runtime, m.mean_latency, m.packets_delivered,
                        m.retransmits)


class TestBackToBackDeterminism:
    def test_two_runs_in_one_process_are_identical(self):
        """Per-simulator packet ids make consecutive runs byte-identical:
        a process-global counter would give the second run different
        pkt_ids (and thus a different trace) than the first."""
        config = ExperimentConfig(
            queue=QueueSetup(kind="red",
                             buffer_packets=SHALLOW_BUFFER_PACKETS,
                             target_delay_s=us(500.0)),
            variant=TcpVariant.ECN,
            seed=7,
        ).scaled(0.02)
        first_trace, first_metrics = _traced_cell_run(config)
        second_trace, second_metrics = _traced_cell_run(config)
        assert len(first_trace) > 100
        assert first_trace == second_trace
        assert first_metrics == second_metrics
        # pkt_ids start from 0 every run — the counter is truly per-run.
        assert min(pid for _t, pid in first_trace) < 50


# ---------------------------------------------------------------------------
# Port/tracer ownership.
# ---------------------------------------------------------------------------

class TestTracerOwnership:
    def test_port_refuses_qdisc_with_foreign_tracer(self):
        sim = Simulator()
        qdisc = DropTail(10)
        qdisc.tracer = Tracer()  # someone else already claimed the queue
        with pytest.raises(TopologyError, match="different tracer"):
            Port(sim, "p0", rate_bps=1e9, delay_s=0.0,
                 qdisc=qdisc, tracer=Tracer())

    def test_port_installs_its_tracer_on_the_qdisc(self):
        sim = Simulator()
        qdisc = DropTail(10)
        tracer = Tracer()
        port = Port(sim, "p0", rate_bps=1e9, delay_s=0.0,
                    qdisc=qdisc, tracer=tracer)
        assert qdisc.tracer is tracer

    def test_port_accepts_qdisc_already_carrying_the_same_tracer(self):
        sim = Simulator()
        qdisc = DropTail(10)
        tracer = Tracer()
        qdisc.tracer = tracer
        Port(sim, "p0", rate_bps=1e9, delay_s=0.0,
             qdisc=qdisc, tracer=tracer)  # same bus: not a conflict


# ---------------------------------------------------------------------------
# Profiler labels for the bound-method transmit path.
# ---------------------------------------------------------------------------

class TestProfilerLabels:
    def test_bound_method_buckets_by_class_and_method(self):
        sim = Simulator()
        port = Port(sim, "p0", rate_bps=1e9, delay_s=0.0, qdisc=DropTail(10))
        assert callback_category(port._tx_done) == "Port._tx_done"
        assert callback_category(port._deliver_head) == "Port._deliver_head"

    def test_partial_unwraps_to_wrapped_callable(self):
        def tick(_n):
            pass

        wrapped = partial(partial(tick, 1))
        category = callback_category(wrapped)
        # Unwrapped to ``tick`` (a <locals> closure of this test), so it
        # buckets under the test method — not under ``partial``.
        expected = self.test_partial_unwraps_to_wrapped_callable.__qualname__
        assert category == expected  # not "partial", the type name

    def test_closure_buckets_under_enclosing_method(self):
        def outer():
            return lambda: None

        # Everything after the first ``.<locals>`` is stripped, so the
        # lambda accounts to the (test) function that ultimately made it.
        expected = self.test_closure_buckets_under_enclosing_method.__qualname__
        assert callback_category(outer()) == expected


# ---------------------------------------------------------------------------
# PacketPool.
# ---------------------------------------------------------------------------

class TestPacketPool:
    def test_acquire_release_reuses_storage(self):
        pool = PacketPool(max_size=4)
        a = pool.acquire(src=1, sport=1, dst=2, dport=2, payload=100, pkt_id=0)
        pool.release(a)
        b = pool.acquire(src=3, sport=4, dst=5, dport=6, payload=0,
                         flags=FLAG_ACK, pkt_id=1)
        assert b is a  # recycled the same slot storage
        assert (b.src, b.dst, b.pkt_id) == (3, 5, 1)
        assert b.is_pure_ack  # classification recomputed, not stale
        assert pool.reused == 1

    def test_pool_bounded(self):
        pool = PacketPool(max_size=1)
        pkts = [pool.acquire(src=1, sport=1, dst=2, dport=2, pkt_id=i)
                for i in range(3)]
        for p in pkts:
            pool.release(p)
        assert len(pool) == 1  # excess releases are dropped, not hoarded


# ---------------------------------------------------------------------------
# Bench harness.
# ---------------------------------------------------------------------------

def _tiny_cells():
    config = ExperimentConfig(
        queue=QueueSetup(kind="red",
                         buffer_packets=SHALLOW_BUFFER_PACKETS,
                         target_delay_s=us(500.0)),
        variant=TcpVariant.ECN,
        seed=42,
    ).scaled(0.01)
    return [("tiny", config)]


class TestBenchHarness:
    def test_report_schema_and_determinism(self, tmp_path):
        report = run_bench(quick=True, repeats=2, cells=_tiny_cells())
        assert report["schema"] == SCHEMA
        assert set(report) >= {"schema", "created", "host", "calibration",
                               "micro", "macro", "repeats", "quick"}
        assert set(report["micro"]) == {"event_churn", "packet_construct",
                                        "red_cycle"}
        for row in report["micro"].values():
            assert row["rate_per_s"] > 0
            assert len(row["samples_s"]) == 2
        cell = report["macro"]["tiny"]
        assert cell["deterministic"] is True
        assert cell["events"] > 0
        assert cell["events_per_s"] > 0
        assert cell["packets_per_s"] > 0
        assert cell["normalized"] > 0
        # Round-trips through JSON unchanged.
        path = write_bench(report, str(tmp_path / "BENCH_test.json"))
        with open(path) as fh:
            assert json.load(fh) == json.loads(json.dumps(report))

    def test_compare_detects_regressions(self):
        report = run_bench(quick=True, repeats=1, cells=_tiny_cells())
        ok, lines = compare_to_baseline(report, report)
        assert ok and any("tiny" in line for line in lines)

        slower = json.loads(json.dumps(report))
        slower["macro"]["tiny"]["normalized"] *= 2.0
        ok, lines = compare_to_baseline(slower, report, tolerance=0.25)
        assert not ok
        assert any("REGRESSION" in line for line in lines)
        # ...but a generous tolerance lets the same delta through.
        ok, _ = compare_to_baseline(slower, report, tolerance=1.5)
        assert ok

    def test_compare_rejects_foreign_schema(self):
        report = run_bench(quick=True, repeats=1, cells=_tiny_cells())
        ok, lines = compare_to_baseline(report, {"schema": "other/v0"})
        assert not ok and "schema" in lines[0]

    def test_render_report_mentions_all_workloads(self):
        report = run_bench(quick=True, repeats=1, cells=_tiny_cells())
        text = render_report(report)
        assert "tiny" in text and "event_churn" in text
        assert "deterministic" in text

    def test_canonical_cells_pin_the_smoke_configuration(self):
        cells = dict(canonical_cells(quick=True))
        assert set(cells) == {"fig2-smoke"}
        smoke = cells["fig2-smoke"]
        assert smoke.seed == 42
        assert smoke.queue.kind == "red"
        assert smoke.queue.protection is ProtectionMode.DEFAULT
        assert smoke.queue.target_delay_s == pytest.approx(us(500.0))
        full = dict(canonical_cells(quick=False))
        assert set(full) == {"fig2-smoke", "droptail-shallow",
                             "codel-default", "mix-smoke",
                             "bulk-packet", "bulk-hybrid"}
        from repro.experiments.mix import MixConfig
        assert isinstance(full["mix-smoke"], MixConfig)
        assert full["mix-smoke"].seed == 42
        # The bulk pair differs ONLY in fidelity: their normalized-time
        # ratio is the fluid tier's speedup measurement.
        from dataclasses import replace
        assert full["bulk-packet"].fidelity == "packet"
        assert full["bulk-hybrid"] == replace(full["bulk-packet"],
                                              fidelity="hybrid")

    def test_default_bench_path_stamp(self):
        assert default_bench_path(0.0) == "BENCH_19700101-000000.json"

    def test_calibration_warmup_recorded_and_excluded(self):
        """The warmup prefix is discarded: it is recorded in the report
        for inspection but never enters the calibration minimum."""
        report = run_bench(quick=True, repeats=1, cells=[])
        calib = report["calibration"]
        assert calib["warmup"] == 2
        assert len(calib["warmup_s"]) == 2
        assert all(s > 0 for s in calib["warmup_s"])
        # best_s comes from the kept samples alone, even when a warmup
        # sample happened to be the fastest of the whole batch.
        assert calib["best_s"] == min(calib["samples_s"])

    def test_render_compare_table(self):
        report = run_bench(quick=True, repeats=1, cells=_tiny_cells())
        ok, lines = render_compare(report, report)
        assert ok
        assert any("tiny" in line and "+0.0%" in line for line in lines)

        candidate = json.loads(json.dumps(report))
        candidate["macro"]["tiny"]["normalized"] *= 2.0
        candidate["macro"]["extra"] = dict(candidate["macro"]["tiny"])
        ok, lines = render_compare(report, candidate, tolerance=0.25)
        assert not ok
        assert any("REGRESSION" in line for line in lines)
        assert any("extra" in line and "only in B" in line for line in lines)
        # An improvement (A slower than B) never gates.
        ok, lines = render_compare(candidate, report, tolerance=0.25)
        assert ok
        assert any("improved" in line for line in lines)

    def test_render_compare_rejects_foreign_schema(self):
        report = run_bench(quick=True, repeats=1, cells=[])
        ok, lines = render_compare({"schema": "other/v0"}, report)
        assert not ok and "schema" in lines[0]

    def test_committed_baseline_is_loadable(self):
        with open("benchmarks/BENCH_baseline.json") as fh:
            baseline = json.load(fh)
        assert baseline["schema"] == SCHEMA
        assert "fig2-smoke" in baseline["macro"]
        assert baseline["macro"]["fig2-smoke"]["normalized"] > 0


class TestBenchCli:
    def test_parser_wires_the_bench_verb(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["bench", "--quick", "--repeats", "2",
             "--baseline", "benchmarks/BENCH_baseline.json",
             "--tolerance", "0.3", "--out", "-"])
        assert args.command == "bench"
        assert args.quick and args.repeats == 2
        assert args.tolerance == pytest.approx(0.3)
        assert args.out == "-"

    def test_parser_wires_compare_and_fluid(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["bench", "--compare", "a.json", "b.json"])
        assert args.compare == ["a.json", "b.json"]
        args = build_parser().parse_args(
            ["fluid", "--smoke", "--manifest", "out.json", "--quiet"])
        assert args.command == "fluid"
        assert args.smoke and args.quiet and args.manifest == "out.json"

    def test_cli_compare_reports(self, tmp_path, capsys):
        from repro.cli import main

        report = run_bench(quick=True, repeats=1, cells=_tiny_cells())
        a = tmp_path / "a.json"
        a.write_text(json.dumps(report))
        worse = json.loads(json.dumps(report))
        worse["macro"]["tiny"]["normalized"] *= 2.0
        b = tmp_path / "b.json"
        b.write_text(json.dumps(worse))

        assert main(["bench", "--compare", str(a), str(a)]) == 0
        assert main(["bench", "--compare", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert main(["bench", "--compare", str(a),
                     str(tmp_path / "missing.json")]) == 3
