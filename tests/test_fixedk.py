"""Tests for the Fixed-K ECN experiment family."""

from dataclasses import replace

import pytest

from repro.core.protection import ProtectionMode
from repro.errors import ConfigError
from repro.experiments.cache import config_cache_key
from repro.experiments.fixedk import (
    FixedKConfig,
    build_regime_maps,
    fixedk_grid,
    fixedk_smoke_cells,
    render_fixedk_table,
    render_regime_grid,
    run_fixedk_cell,
)
from repro.experiments.runner import run_cell
from repro.tcp.endpoint import TcpVariant
from repro.units import gbps


def tiny(**kw):
    """A fast 4-host cell: 2 leaves x 1 spine x 2 hosts per leaf."""
    defaults = dict(
        k_packets=8, load=0.5, fanout=2,
        n_leaves=2, n_spines=1, hosts_per_leaf=2,
        duration_s=0.05, drain_s=0.1, monitor_interval_s=0.001,
    )
    defaults.update(kw)
    return FixedKConfig(**defaults)


class TestConfig:
    def test_validates_clean_default(self):
        assert FixedKConfig().validate() is not None

    @pytest.mark.parametrize("kw", [
        dict(k_packets=0),
        dict(k_packets=101, buffer_packets=100),
        dict(load=0.0),
        dict(load=2.5),
        dict(n_leaves=1),
        dict(fanout=0),
        dict(fanout=99),
        dict(oversubscription=0.5),
        dict(uplink_rates_bps=(gbps(1),), n_spines=2),
        dict(duration_s=0.0),
        dict(monitor_interval_s=1e9),
        dict(max_p=0.0),
    ])
    def test_rejects_bad_values(self, kw):
        with pytest.raises(ConfigError):
            replace(FixedKConfig(), **kw).validate()

    def test_uniform_uplink_rates_from_oversubscription(self):
        cfg = FixedKConfig(hosts_per_leaf=4, n_spines=2,
                           link_rate_bps=gbps(1), oversubscription=2.0)
        # 4 hosts x 1G over (2.0 x 2 spines) = 1G per uplink.
        assert cfg.uplink_rates() == (pytest.approx(gbps(1)),) * 2

    def test_asymmetric_rates_respected(self):
        cfg = FixedKConfig(n_spines=2,
                           uplink_rates_bps=(gbps(1), gbps(0.5)))
        assert cfg.uplink_rates() == (gbps(1), gbps(0.5))

    def test_fanin_capacity_is_min_of_edge_and_plane(self):
        # Slow fabric plane: the spine->leaf0 sum is the bottleneck.
        slow = FixedKConfig(n_spines=2, link_rate_bps=gbps(1),
                            uplink_rates_bps=(gbps(0.2), gbps(0.2)))
        assert slow.fanin_capacity_bps() == pytest.approx(gbps(0.4))
        # Fat plane: the aggregator's edge link caps the fan-in.
        fat = FixedKConfig(n_spines=2, link_rate_bps=gbps(1),
                           uplink_rates_bps=(gbps(2), gbps(2)))
        assert fat.fanin_capacity_bps() == pytest.approx(gbps(1))

    def test_rate_tracks_load(self):
        cfg = FixedKConfig(load=0.5)
        assert (replace(cfg, load=1.0).rate_qps()
                == pytest.approx(2 * cfg.rate_qps()))

    def test_red_params_are_fixed_k(self):
        p = FixedKConfig(k_packets=16,
                         protection=ProtectionMode.ECE).red_params()
        assert p.min_th == p.max_th == 16.0
        assert not p.gentle and p.use_instantaneous and p.ecn
        assert p.protection is ProtectionMode.ECE
        p.validate()

    def test_label_round_trips_axes(self):
        cfg = FixedKConfig(k_packets=32, load=0.8, fanout=8,
                           protection=ProtectionMode.ACK_SYN,
                           variant=TcpVariant.DCTCP)
        label = cfg.label()
        for token in ("K32", "l0.8", "n8", "ack+syn", "dctcp"):
            assert token in label

    def test_cacheable(self):
        key = config_cache_key(tiny())
        assert isinstance(key, str) and key
        assert key == config_cache_key(tiny())
        assert key != config_cache_key(tiny(k_packets=9))


class TestGrid:
    def test_default_grid_shape_and_unique_labels(self):
        cells = fixedk_grid()
        # 5 K x 2 loads x 2 fanouts x 3 protections x 2 variants x 1 seed
        assert len(cells) == 5 * 2 * 2 * 3 * 2
        labels = [label for label, _ in cells]
        assert len(set(labels)) == len(labels)
        for label, cfg in cells:
            assert label == cfg.label()
            cfg.validate()

    def test_smoke_grid_is_pinned_and_small(self):
        cells = fixedk_smoke_cells()
        assert len(cells) == 8  # 2 K x 2 fan-ins x 2 protections
        ks = {c.k_packets for _, c in cells}
        fanouts = {c.fanout for _, c in cells}
        prots = {c.protection for _, c in cells}
        assert len(ks) == 2 and len(fanouts) == 2 and len(prots) == 2
        for _, cfg in cells:
            cfg.validate()
            assert cfg.duration_s <= 0.2  # stays CI-fast


class TestRun:
    def test_cell_produces_fixedk_manifest(self):
        cell = run_fixedk_cell(tiny())
        assert cell.manifest["kind"] == "fixedk-cell"
        fx = cell.manifest["fixedk"]
        assert fx["schema"] == "repro.fixedk/v1"
        assert fx["k_packets"] == 8
        assert fx["rpc"]["queries_completed"] > 0
        assert fx["rpc"]["responses"]["slowdown"]["p99"] >= 1.0
        up = fx["uplinks"]
        assert up["ports"] == 4  # 2 leaves x 1 spine x both directions
        assert up["arrivals"] > 0
        assert 0.0 <= up["ack_loss_rate"] <= 1.0
        assert len(up["per_port"]) == 4

    def test_monitors_cover_uplinks_and_aggregator_downlink(self):
        cell = run_fixedk_cell(tiny())
        queues = {s.queue for s in cell.snapshots}
        assert "leaf0->spine0" in queues
        assert "spine0->leaf0" in queues
        assert "leaf0->h0_0" in queues  # the aggregator's ToR downlink

    def test_deterministic_and_dispatched(self):
        from repro.validate.smoke import fingerprint

        a = run_cell(tiny())       # via the run_cell dispatch branch
        b = run_fixedk_cell(tiny())
        assert a.manifest["kind"] == "fixedk-cell"
        assert fingerprint(a) == fingerprint(b)

    def test_every_response_crosses_the_fabric(self):
        cell = run_fixedk_cell(tiny())
        up = cell.manifest["fixedk"]["uplinks"]
        rpc = cell.manifest["fixedk"]["rpc"]
        # Each completed response is >= response_bytes across the spine.
        assert up["arrivals"] >= rpc["responses"]["flows"]


class TestReporting:
    def run_pair(self):
        results = {}
        for k in (8, 64):
            cfg = tiny(k_packets=k)
            results[cfg.label()] = run_fixedk_cell(cfg)
        return results

    def test_regime_maps_and_renderers(self):
        from repro.plotting import grid_regime_map_to_svg

        results = self.run_pair()
        maps = build_regime_maps(results)
        assert len(maps) == 1  # one (variant, protection, fanout) slice
        m = maps[0]
        assert m.k_values == [8, 64]
        assert m.loads == [0.5]
        assert set(m.cells) == {(0, 0), (1, 0)}
        for point in m.cells.values():
            assert point["classification"] in (
                "stable", "limit-cycle", "chaotic-irregular")
        # Stability blocks were stamped onto the cells as a side effect.
        for cell in results.values():
            assert "stability" in cell.manifest

        d = m.to_dict()
        assert len(d["points"]) == 2

        ascii_grid = render_regime_grid(m)
        assert "load \\ K" in ascii_grid

        svg = grid_regime_map_to_svg(m)
        assert svg.startswith("<svg") and "</svg>" in svg

    def test_table_lists_every_cell(self):
        results = self.run_pair()
        table = render_fixedk_table(results)
        for label in results:
            assert label in table
        assert "slow_p99" in table and "ack_loss" in table
