"""Tests for the protection-mode predicate in isolation."""

import pytest

from repro.core import ProtectionMode, is_protected
from repro.net.packet import (
    ECN_ECT0,
    FLAG_ACK,
    FLAG_CWR,
    FLAG_ECE,
    FLAG_FIN,
    FLAG_SYN,
    Packet,
)


def pkt(payload=0, flags=0, ecn=0):
    return Packet(src=0, sport=1, dst=1, dport=2, payload=payload,
                  flags=flags, ecn=ecn)


PLAIN_ACK = dict(flags=FLAG_ACK)
ECE_ACK = dict(flags=FLAG_ACK | FLAG_ECE)
SYN_PLAIN = dict(flags=FLAG_SYN)
SYN_ECN = dict(flags=FLAG_SYN | FLAG_ECE | FLAG_CWR)
SYNACK_ECN = dict(flags=FLAG_SYN | FLAG_ACK | FLAG_ECE)
DATA = dict(payload=1460, flags=FLAG_ACK, ecn=ECN_ECT0)
NONECT_DATA = dict(payload=1460, flags=FLAG_ACK)
FIN = dict(flags=FLAG_FIN | FLAG_ACK)


class TestDefaultMode:
    @pytest.mark.parametrize("kw", [PLAIN_ACK, ECE_ACK, SYN_ECN, DATA, FIN])
    def test_nothing_protected(self, kw):
        assert not is_protected(pkt(**kw), ProtectionMode.DEFAULT)


class TestEceMode:
    def test_ece_ack_protected(self):
        assert is_protected(pkt(**ECE_ACK), ProtectionMode.ECE)

    def test_plain_ack_not_protected(self):
        assert not is_protected(pkt(**PLAIN_ACK), ProtectionMode.ECE)

    def test_ecn_setup_syn_protected(self):
        assert is_protected(pkt(**SYN_ECN), ProtectionMode.ECE)

    def test_ecn_setup_synack_protected(self):
        assert is_protected(pkt(**SYNACK_ECN), ProtectionMode.ECE)

    def test_plain_syn_not_protected(self):
        # A non-ECN SYN has no ECE bit, so the ECE mode cannot shield it.
        assert not is_protected(pkt(**SYN_PLAIN), ProtectionMode.ECE)

    def test_data_not_protected(self):
        assert not is_protected(pkt(**NONECT_DATA), ProtectionMode.ECE)


class TestAckSynMode:
    @pytest.mark.parametrize(
        "kw", [PLAIN_ACK, ECE_ACK, SYN_PLAIN, SYN_ECN, SYNACK_ECN]
    )
    def test_acks_and_syns_protected(self, kw):
        assert is_protected(pkt(**kw), ProtectionMode.ACK_SYN)

    def test_non_ect_data_not_protected(self):
        assert not is_protected(pkt(**NONECT_DATA), ProtectionMode.ACK_SYN)

    def test_fin_not_protected(self):
        assert not is_protected(pkt(**FIN), ProtectionMode.ACK_SYN)


class TestModeNames:
    def test_str_values_match_paper_labels(self):
        assert str(ProtectionMode.DEFAULT) == "default"
        assert str(ProtectionMode.ECE) == "ece"
        assert str(ProtectionMode.ACK_SYN) == "ack+syn"
