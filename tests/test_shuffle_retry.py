"""Unit tests for the fetcher's retry behaviour (failed shuffle fetches)."""

import pytest

from repro.core import DropTail
from repro.errors import MapReduceError
from repro.mapreduce.shuffle import Fetcher, ShuffleSegment
from repro.net import LinkFlapper, build_single_rack
from repro.sim import Simulator
from repro.tcp import TcpConfig, TcpListener, TcpVariant
from repro.units import gbps, kb, us


def make_fetcher(sim, spec, node=0, expected=1, parallelism=2,
                 max_attempts=3, cfg=None, done=None):
    cfg = cfg or TcpConfig()
    TcpListener(sim, spec.hosts[node], 50060, cfg)
    return Fetcher(
        sim, node, spec.hosts, 50060, cfg,
        disk_read_bps=400e6, parallelism=parallelism,
        expected_segments=expected,
        on_done=(done if done is not None else (lambda: None)),
        max_fetch_attempts=max_attempts,
    )


class TestLocalAndEmpty:
    def test_local_segment_no_network(self):
        sim = Simulator()
        spec = build_single_rack(sim, 2, lambda nm: DropTail(100, name=nm))
        finished = []
        f = make_fetcher(sim, spec, expected=1, done=lambda: finished.append(1))
        f.add_segment(ShuffleSegment(0, src_node=0, nbytes=kb(400)))
        sim.run(until=5.0)
        assert finished == [1]
        assert f.flow_results == []  # no TCP flow involved
        assert f.fetched_bytes == kb(400)

    def test_empty_segment_counts_immediately(self):
        sim = Simulator()
        spec = build_single_rack(sim, 2, lambda nm: DropTail(100, name=nm))
        finished = []
        f = make_fetcher(sim, spec, expected=1, done=lambda: finished.append(1))
        f.add_segment(ShuffleSegment(0, src_node=1, nbytes=0))
        assert finished == [1]


class TestRetry:
    def flaky_setup(self, outage_end, max_attempts=5):
        """A remote fetch whose source uplink is down for a while."""
        sim = Simulator()
        spec = build_single_rack(sim, 2, lambda nm: DropTail(100, name=nm),
                                 link_rate_bps=gbps(1), link_delay_s=us(20))
        cfg = TcpConfig(variant=TcpVariant.RENO, max_retries=3)
        finished = []
        f = make_fetcher(sim, spec, node=0, expected=1, cfg=cfg,
                         max_attempts=max_attempts,
                         done=lambda: finished.append(1))
        # Source host 1's uplink fails immediately and recovers later.
        LinkFlapper(sim, [spec.hosts[1].uplink], [(1e-5, outage_end)])
        f.add_segment(ShuffleSegment(0, src_node=1, nbytes=kb(200)))
        return sim, f, finished

    def test_retries_until_link_returns(self):
        sim, f, finished = self.flaky_setup(outage_end=0.5)
        sim.run(until=120.0)
        assert finished == [1]
        assert f.fetch_failures >= 1
        assert any(r.failed for r in f.flow_results)
        assert any(not r.failed for r in f.flow_results)

    def test_abandons_after_max_attempts(self):
        sim, f, finished = self.flaky_setup(outage_end=500.0, max_attempts=2)
        with pytest.raises(MapReduceError):
            sim.run(until=1000.0)
        assert finished == []
        assert f.fetch_failures == 2

    def test_rejects_zero_parallelism(self):
        sim = Simulator()
        spec = build_single_rack(sim, 2, lambda nm: DropTail(100, name=nm))
        with pytest.raises(MapReduceError):
            make_fetcher(sim, spec, parallelism=0)


class TestParallelismBound:
    def test_in_flight_never_exceeds_parallelism(self):
        sim = Simulator()
        spec = build_single_rack(sim, 6, lambda nm: DropTail(200, name=nm))
        cfg = TcpConfig()
        finished = []
        f = make_fetcher(sim, spec, node=0, expected=5, parallelism=2,
                         cfg=cfg, done=lambda: finished.append(1))
        peak = 0

        orig_pump = f._pump

        def watching_pump():
            nonlocal peak
            orig_pump()
            peak = max(peak, f._in_flight)

        f._pump = watching_pump
        for i in range(5):
            f.add_segment(ShuffleSegment(i, src_node=1 + i % 5, nbytes=kb(100)))
        sim.run(until=30.0)
        assert finished == [1]
        assert peak <= 2
