"""Tests for the true simple marking scheme."""

import pytest

from repro.core import SimpleMarkingQueue
from repro.errors import ConfigError
from repro.net.packet import ECN_ECT0, ECN_NOT_ECT, FLAG_ACK, FLAG_SYN, Packet


def data(ect=True, seq=0):
    return Packet(src=0, sport=1, dst=1, dport=2, seq=seq, payload=1460,
                  ecn=ECN_ECT0 if ect else ECN_NOT_ECT)


def ack():
    return Packet(src=1, sport=2, dst=0, dport=1, flags=FLAG_ACK)


class TestMarking:
    def test_no_mark_below_threshold(self):
        q = SimpleMarkingQueue(100, mark_threshold=5)
        for i in range(5):
            p = data(seq=i)
            q.enqueue(p, 0.0)
            assert not p.is_ce

    def test_marks_ect_above_threshold(self):
        q = SimpleMarkingQueue(100, mark_threshold=3)
        for i in range(3):
            q.enqueue(data(seq=i), 0.0)
        p = data()
        assert q.enqueue(p, 0.0)
        assert p.is_ce
        assert q.stats.marks == 1

    def test_uses_instantaneous_queue(self):
        q = SimpleMarkingQueue(100, mark_threshold=2)
        q.enqueue(data(), 0.0)
        q.enqueue(data(), 0.0)
        p = data()
        q.enqueue(p, 0.0)
        assert p.is_ce
        # Drain below threshold: next packet is not marked.
        q.dequeue(0.0)
        q.dequeue(0.0)
        p2 = data()
        q.enqueue(p2, 0.0)
        assert not p2.is_ce


class TestNeverEarlyDrops:
    """The defining property: only physical overflow drops packets."""

    def test_acks_never_early_dropped(self):
        q = SimpleMarkingQueue(100, mark_threshold=1)
        for i in range(50):
            q.enqueue(data(seq=i), 0.0)
        for _ in range(20):
            assert q.enqueue(ack(), 0.0)
        assert q.stats.drops_early == 0
        assert q.stats.ack_drops == 0

    def test_non_ect_data_never_early_dropped(self):
        q = SimpleMarkingQueue(100, mark_threshold=1)
        for i in range(50):
            assert q.enqueue(data(ect=False, seq=i), 0.0)
        assert q.stats.drops_early == 0

    def test_non_ect_never_marked(self):
        q = SimpleMarkingQueue(100, mark_threshold=0)
        p = ack()
        q.enqueue(p, 0.0)
        assert not p.is_ce

    def test_tail_drop_when_full(self):
        q = SimpleMarkingQueue(3, mark_threshold=1)
        for i in range(3):
            q.enqueue(data(seq=i), 0.0)
        assert not q.enqueue(data(), 0.0)
        assert q.stats.drops_tail == 1
        assert not q.enqueue(ack(), 0.0)
        assert q.stats.drops_tail == 2
        assert q.stats.drops_early == 0


class TestConfig:
    def test_rejects_negative_threshold(self):
        with pytest.raises(ConfigError):
            SimpleMarkingQueue(10, mark_threshold=-1)

    def test_zero_threshold_marks_everything_ect(self):
        q = SimpleMarkingQueue(10, mark_threshold=0)
        p = data()
        q.enqueue(p, 0.0)
        assert p.is_ce
