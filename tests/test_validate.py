"""Tests for the repro.validate layer: checkers, fuzzer, armed smoke cells."""

import pytest

from repro.core.droptail import DropTail
from repro.errors import ValidationError
from repro.net.topology import build_single_rack
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.validate import (
    CHECKER_NAMES,
    ConservationChecker,
    EngineChecker,
    QueueAccountingChecker,
    Scenario,
    TcpChecker,
    ValidationSuite,
    checkers_from_names,
    fuzz,
    run_scenario,
)


def rack(sim, tracer, n_hosts=3):
    return build_single_rack(
        sim, n_hosts, lambda name: DropTail(50, name=name),
        link_rate_bps=100e6, link_delay_s=10e-6, tracer=tracer)


class TestSuiteWiring:
    def test_registry_round_trip(self):
        checkers = checkers_from_names(list(CHECKER_NAMES))
        assert [c.name for c in checkers] == list(CHECKER_NAMES)

    def test_unknown_checker_name_rejected(self):
        with pytest.raises(ValidationError, match="unknown checker"):
            checkers_from_names(["conservation", "typo"])

    def test_attach_requires_tracer(self):
        sim = Simulator()
        spec = rack(sim, Tracer())
        with pytest.raises(ValidationError, match="tracer"):
            ValidationSuite().attach(sim, spec.network, None)

    def test_double_attach_rejected(self):
        sim = Simulator()
        tracer = Tracer()
        spec = rack(sim, tracer)
        suite = ValidationSuite().attach(sim, spec.network, tracer)
        with pytest.raises(ValidationError, match="already attached"):
            suite.attach(sim, spec.network, tracer)

    def test_finish_before_attach_rejected(self):
        with pytest.raises(ValidationError):
            ValidationSuite().finish()

    def test_as_dict_shape(self):
        sim = Simulator()
        tracer = Tracer()
        spec = rack(sim, tracer)
        suite = ValidationSuite().attach(sim, spec.network, tracer)
        suite.finish()
        doc = suite.as_dict()
        assert doc["ok"] is True
        assert doc["violation_count"] == 0
        assert set(doc["checkers"]) == set(CHECKER_NAMES)


class TestConservationLedger:
    """End-to-end conservation on every protection mode (satellite d)."""

    @pytest.mark.parametrize("protection", ["default", "ece", "ack+syn"])
    def test_red_protection_modes_conserve(self, protection):
        sc = Scenario(qdisc="red", protection=protection, n_hosts=4,
                      n_flows=4, flow_bytes=30_000, buffer_packets=20, seed=3)
        res = run_scenario(sc)
        assert res.ok, res.violations
        assert res.completed_flows + res.failed_flows == sc.n_flows
        assert res.events > 0

    def test_codel_head_drops_conserve(self):
        # CoDel's head-drop path removes packets at dequeue time; the
        # ledger must account for them as drops, not vanished packets.
        sc = Scenario(qdisc="codel", n_hosts=5, n_flows=6,
                      flow_bytes=50_000, buffer_packets=100, seed=9)
        res = run_scenario(sc)
        assert res.ok, res.violations

    def test_droptail_tail_drops_conserve(self):
        sc = Scenario(qdisc="droptail", n_hosts=4, n_flows=5,
                      flow_bytes=40_000, buffer_packets=10, seed=5)
        res = run_scenario(sc)
        assert res.ok, res.violations


class TestTcpChecker:
    def mk_records(self):
        sim = Simulator()
        tracer = Tracer()
        chk = TcpChecker(min_rto=0.01, max_rto=2.0)
        chk.attach(sim, None, tracer)
        return tracer, chk

    def emit(self, tracer, t, una, nxt, nsb=0, cwnd=14600.0, rto=0.05,
             nbytes=10**6, flight=None):
        tracer.emit(t, "tcp.cwnd", "h0:1->h1:2", {
            "snd_una": una, "snd_nxt": nxt, "no_sample_below": nsb,
            "flight": nxt - una if flight is None else flight,
            "cwnd": cwnd, "rto": rto, "nbytes": nbytes,
        })

    def test_clean_stream_passes(self):
        tracer, chk = self.mk_records()
        self.emit(tracer, 0.0, 0, 1460)
        self.emit(tracer, 0.1, 1460, 2920)
        assert chk.violations == []
        assert chk.samples == 2

    def test_flags_ack_regression(self):
        tracer, chk = self.mk_records()
        self.emit(tracer, 0.0, 2920, 2920)
        self.emit(tracer, 0.1, 1460, 2920)
        assert any("regressed" in v.message for v in chk.violations)

    def test_flags_send_point_behind_ack(self):
        # The exact shape of the go-back-N bug the fuzzer caught: an ACK
        # for pre-RTO in-flight data overtaking the collapsed snd_nxt.
        tracer, chk = self.mk_records()
        self.emit(tracer, 0.5, 2920, 1460)
        assert any("snd_nxt 1460 < snd_una 2920" in v.message
                   for v in chk.violations)

    def test_flags_flight_mismatch(self):
        tracer, chk = self.mk_records()
        self.emit(tracer, 0.0, 0, 1460, flight=9999)
        assert any("flight" in v.message for v in chk.violations)

    def test_flags_rto_out_of_bounds(self):
        tracer, chk = self.mk_records()
        self.emit(tracer, 0.0, 0, 1460, rto=5.0)
        assert any("max_rto" in v.message for v in chk.violations)

    def test_flags_karn_window_regression(self):
        tracer, chk = self.mk_records()
        self.emit(tracer, 0.0, 0, 1460, nsb=2920)
        self.emit(tracer, 0.1, 1460, 2920, nsb=1460)
        assert any("Karn" in v.message for v in chk.violations)

    def test_legacy_records_without_sequence_fields_ignored(self):
        tracer, chk = self.mk_records()
        tracer.emit(0.0, "tcp.cwnd", "f", {"cwnd": 14600.0})
        assert chk.violations == [] and chk.samples == 0


class TestEngineStepCompaction:
    """Satellite d: step() + heap compaction interleaving."""

    def test_invariants_hold_across_stepped_compactions(self):
        sim = Simulator()
        fired = []
        handles = [sim.schedule(1e-3 * (i + 1), lambda i=i: fired.append(i))
                   for i in range(200)]
        # Cancelling >50% of a >64-entry heap triggers in-place compaction
        # (two thirds cancelled guarantees the threshold is crossed).
        for i, h in enumerate(handles):
            if i % 3:
                h.cancel()
        assert sim.check_invariants() == []
        while sim.step():
            assert sim.check_invariants() == []
        assert fired == list(range(0, 200, 3))

    def test_step_and_run_agree(self):
        def build():
            sim = Simulator()
            fired = []
            hs = [sim.schedule(1e-4 * (i % 7 + 1), lambda i=i: fired.append(i))
                  for i in range(150)]
            for h in hs[1::3]:
                h.cancel()
            return sim, fired

        sim_a, fired_a = build()
        while sim_a.step():
            pass
        sim_b, fired_b = build()
        sim_b.run()
        assert fired_a == fired_b
        assert sim_a.now == sim_b.now
        assert sim_a.check_invariants() == []
        assert sim_b.check_invariants() == []

    def test_engine_checker_piggybacks_on_trace(self):
        sim = Simulator()
        tracer = Tracer()
        chk = EngineChecker(stride=2)
        chk.attach(sim, None, tracer)
        from repro.net.packet import Packet
        for i in range(4):
            tracer.emit(sim.now, "enqueue", "q",
                        Packet(0, 1, 1, 2, payload=100, pkt_id=i))
        chk.finish(sim.now)
        assert chk.violations == []
        assert chk.audits == 3  # every 2nd event + the finish sweep

    def test_engine_checker_flags_stale_timestamp(self):
        sim = Simulator()
        tracer = Tracer()
        chk = EngineChecker()
        chk.attach(sim, None, tracer)
        from repro.net.packet import Packet
        tracer.emit(123.0, "enqueue", "q", Packet(0, 1, 1, 2, pkt_id=0))
        assert any("sim clock" in v.message for v in chk.violations)


class TestScenarioFuzzer:
    def test_scenario_validation_rejects_junk(self):
        with pytest.raises(ValidationError):
            Scenario(qdisc="fq_codel").validate()
        with pytest.raises(ValidationError):
            Scenario(n_hosts=1).validate()

    def test_scenario_dict_round_trip(self):
        sc = Scenario(qdisc="codel", link_flap=True, seed=17)
        assert Scenario(**sc.as_dict()) == sc

    def test_scenario_rejects_unknown_pattern(self):
        with pytest.raises(ValidationError):
            Scenario(pattern="voip").validate()

    def test_rpc_pattern_scenario_clean(self):
        from repro.validate.fuzz import run_scenario

        res = run_scenario(Scenario(pattern="rpc", n_flows=5, n_hosts=5,
                                    seed=12))
        assert res.ok, res.violations
        # 5 queries x fanout min(4, 5) = 4 responses each
        assert res.completed_flows + res.failed_flows == 20

    def test_mixed_pattern_scenario_clean(self):
        from repro.validate.fuzz import run_scenario

        res = run_scenario(Scenario(pattern="mixed", n_flows=6, n_hosts=6,
                                    qdisc="codel", seed=12))
        assert res.ok, res.violations
        # 3 bulk flows + 3 queries x fanout 5
        assert res.completed_flows + res.failed_flows == 3 + 3 * 5

    def test_mixed_pattern_deterministic(self):
        from repro.validate.fuzz import run_scenario

        sc = Scenario(pattern="mixed", n_flows=4, n_hosts=5, seed=99)
        assert run_scenario(sc) == run_scenario(sc)

    def test_fuzz_requires_scenarios(self):
        with pytest.raises(ValidationError):
            fuzz(n=0)

    def test_link_flap_blackout_survives_checks(self):
        # Regression for the RTO/ACK overtake bug: seed 7's sweep is the
        # exact deterministic configuration that first produced
        # ``snd_nxt < snd_una`` after the post-flap RTO recovery.
        rep = fuzz(n=5, seed=7, shrink_failures=False)
        assert rep.ok, rep.failures
        assert rep.scenarios_run == 5

    def test_pinned_seed_sweep_clean(self):
        # Acceptance bar: >= 50 scenarios on the pinned master seed with
        # zero violations.
        rep = fuzz(n=50, seed=42, shrink_failures=False)
        assert rep.ok, rep.failures
        assert rep.scenarios_run == 50
        assert rep.total_events > 0
        assert rep.as_dict()["ok"] is True


class TestArmedBitIdentity:
    def test_armed_cell_is_bit_identical_and_clean(self):
        from repro.validate.smoke import check_cell, smoke_cells
        label, config = smoke_cells(scale=0.03125)[0]  # red-default
        assert label == "red-default"
        result = check_cell(config)
        assert result["identical"], (result["fingerprint"],
                                     result["fingerprint_armed"])
        assert result["validation"]["violation_count"] == 0
        assert result["ok"]
