"""Protocol-level TCP tests: the sender driven by hand-crafted packets.

A stub host captures every packet the sender emits and lets the test
inject arbitrary replies, giving precise control over ACK sequences —
the only way to pin down corner cases like the once-per-window ECE gate
or NewReno partial ACKs.
"""

import pytest

from repro.net.packet import (
    ECN_ECT0,
    ECN_NOT_ECT,
    FLAG_ACK,
    FLAG_CWR,
    FLAG_ECE,
    FLAG_SYN,
    Packet,
)
from repro.sim import Simulator
from repro.tcp import TcpConfig, TcpSender, TcpVariant

MSS = 1460


class StubHost:
    """Captures outbound packets; lets tests deliver inbound ones."""

    def __init__(self, node_id=0):
        self.node_id = node_id
        self.name = f"stub{node_id}"
        self.sent = []
        self._receivers = {}
        self._next_port = 40000

    def send(self, pkt):
        self.sent.append(pkt)

    def bind(self, port, receiver):
        self._receivers[port] = receiver

    def unbind(self, port):
        self._receivers.pop(port, None)

    def allocate_port(self):
        self._next_port += 1
        return self._next_port

    def deliver(self, pkt):
        self._receivers[pkt.dport](pkt)

    # -- helpers -------------------------------------------------------------

    def data_packets(self):
        return [p for p in self.sent if p.payload > 0]

    def last(self):
        return self.sent[-1]


def make_sender(sim, variant=TcpVariant.ECN, nbytes=100 * MSS, **cfg_kw):
    cfg = TcpConfig(variant=variant, **cfg_kw)
    host = StubHost()
    sender = TcpSender(sim, host, dst=1, dport=5000, nbytes=nbytes, config=cfg,
                       on_fail=lambda s: None)
    return host, sender


def synack(sender, ece=True):
    flags = FLAG_SYN | FLAG_ACK | (FLAG_ECE if ece else 0)
    return Packet(src=1, sport=5000, dst=0, dport=sender.sport,
                  flags=flags, ecn=ECN_NOT_ECT)


def ack(sender, ack_no, ece=False, marked_bytes=0):
    flags = FLAG_ACK | (FLAG_ECE if ece else 0)
    return Packet(src=1, sport=5000, dst=0, dport=sender.sport,
                  ack=ack_no, flags=flags, ecn=ECN_NOT_ECT,
                  marked_bytes=marked_bytes)


def establish(sim, host, sender, ece=True):
    sender.start()
    host.deliver(synack(sender, ece=ece))
    return host.data_packets()


class TestHandshake:
    def test_syn_first(self):
        sim = Simulator()
        host, sender = make_sender(sim)
        sender.start()
        assert len(host.sent) == 1
        syn = host.sent[0]
        assert syn.is_syn and syn.has_ece and syn.has_cwr
        assert syn.ecn == ECN_NOT_ECT

    def test_initial_window_sent_after_synack(self):
        sim = Simulator()
        host, sender = make_sender(sim, init_cwnd_segments=10)
        data = establish(sim, host, sender)
        assert len(data) == 10
        assert [p.seq for p in data] == [i * MSS for i in range(10)]

    def test_ecn_negotiation_success(self):
        sim = Simulator()
        host, sender = make_sender(sim)
        data = establish(sim, host, sender, ece=True)
        assert all(p.ecn == ECN_ECT0 for p in data)

    def test_ecn_negotiation_refused(self):
        """Peer SYN-ACK without ECE: fall back to Non-ECT data."""
        sim = Simulator()
        host, sender = make_sender(sim)
        data = establish(sim, host, sender, ece=False)
        assert all(p.ecn == ECN_NOT_ECT for p in data)

    def test_reno_never_requests_ecn(self):
        sim = Simulator()
        host, sender = make_sender(sim, variant=TcpVariant.RENO)
        sender.start()
        assert not host.sent[0].has_ece

    def test_syn_retransmitted_on_timeout(self):
        sim = Simulator()
        host, sender = make_sender(sim, init_rto=0.05)
        sender.start()
        sim.run(until=0.26)
        # initial + retries at ~0.05, 0.15 (backoff x2), ... at least 2 more
        syns = [p for p in host.sent if p.is_syn]
        assert len(syns) >= 3
        assert sender.stats.syn_retries >= 2


class TestSlidingWindow:
    def test_ack_advances_and_sends_more(self):
        sim = Simulator()
        host, sender = make_sender(sim, init_cwnd_segments=4)
        establish(sim, host, sender)
        assert len(host.data_packets()) == 4
        host.deliver(ack(sender, 2 * MSS))
        # slow start: +2 segments for 2 acked -> window 6, 2 acked => 6 in flight
        assert sender.snd_una == 2 * MSS
        assert len(host.data_packets()) == 8

    def test_flight_never_exceeds_cwnd(self):
        sim = Simulator()
        host, sender = make_sender(sim, init_cwnd_segments=5)
        establish(sim, host, sender)
        assert sender.flight_bytes <= sender.cc.cwnd

    def test_rwnd_caps_flight(self):
        sim = Simulator()
        host, sender = make_sender(sim, init_cwnd_segments=50,
                                   rwnd_bytes=4 * MSS)
        establish(sim, host, sender)
        assert len(host.data_packets()) == 4

    def test_completion_callback(self):
        sim = Simulator()
        done = []
        cfg = TcpConfig(variant=TcpVariant.RENO)
        host = StubHost()
        sender = TcpSender(sim, host, 1, 5000, 3 * MSS, cfg,
                           on_complete=lambda s: done.append(s))
        sender.start()
        host.deliver(synack(sender, ece=False))
        host.deliver(ack(sender, 3 * MSS))
        assert done == [sender]
        assert sender.done
        assert sender.fct is not None and sender.fct >= 0

    def test_final_segment_may_be_short(self):
        sim = Simulator()
        host, sender = make_sender(sim, nbytes=MSS + 100)
        establish(sim, host, sender)
        sizes = [p.payload for p in host.data_packets()]
        assert sizes == [MSS, 100]


class TestFastRetransmit:
    def setup_established(self, sim, **kw):
        host, sender = make_sender(sim, variant=TcpVariant.RENO, **kw)
        establish(sim, host, sender, ece=False)
        return host, sender

    def test_three_dup_acks_trigger_retransmit(self):
        sim = Simulator()
        host, sender = self.setup_established(sim, init_cwnd_segments=10)
        n_before = len(host.data_packets())
        for _ in range(2):
            host.deliver(ack(sender, 0))
        assert sender.stats.fast_retransmits == 0
        host.deliver(ack(sender, 0))  # third dup
        assert sender.stats.fast_retransmits == 1
        retx = host.data_packets()[n_before]
        assert retx.seq == 0  # the hole

    def test_window_halved_on_fast_retransmit(self):
        sim = Simulator()
        host, sender = self.setup_established(sim, init_cwnd_segments=10)
        flight = sender.flight_bytes
        for _ in range(3):
            host.deliver(ack(sender, 0))
        assert sender.cc.ssthresh == pytest.approx(flight / 2)

    def test_full_ack_exits_recovery(self):
        sim = Simulator()
        host, sender = self.setup_established(sim, init_cwnd_segments=10)
        recover_point = sender.snd_nxt
        for _ in range(3):
            host.deliver(ack(sender, 0))
        assert sender.in_recovery
        host.deliver(ack(sender, recover_point))
        assert not sender.in_recovery
        assert sender.cc.cwnd == pytest.approx(sender.cc.ssthresh)

    def test_partial_ack_retransmits_next_hole(self):
        sim = Simulator()
        host, sender = self.setup_established(sim, init_cwnd_segments=10)
        for _ in range(3):
            host.deliver(ack(sender, 0))
        n = len(host.data_packets())
        host.deliver(ack(sender, 2 * MSS))  # partial: below recover point
        assert sender.in_recovery
        retx = host.data_packets()[n]
        assert retx.seq == 2 * MSS


class TestRto:
    def test_rto_collapses_window_and_resends_from_una(self):
        sim = Simulator()
        host, sender = make_sender(sim, variant=TcpVariant.RENO,
                                   init_cwnd_segments=10, init_rto=0.05,
                                   min_rto=0.05)
        establish(sim, host, sender, ece=False)
        n = len(host.data_packets())
        sim.run(until=1.0)  # no ACKs ever arrive -> repeated RTOs
        assert sender.stats.rtos >= 1
        assert sender.cc.cwnd == pytest.approx(MSS)
        assert host.data_packets()[n].seq == 0

    def test_backoff_doubles_retransmission_spacing(self):
        sim = Simulator()
        host, sender = make_sender(sim, variant=TcpVariant.RENO,
                                   init_cwnd_segments=1, init_rto=0.05,
                                   min_rto=0.05, max_rto=10.0)
        establish(sim, host, sender, ece=False)
        sim.run(until=1.0)
        times = [sender.start_time]  # not used; compute gaps of retransmits
        datas = host.data_packets()
        # Packets after the first are all retransmits of seq 0.
        assert all(p.seq == 0 for p in datas)
        assert sender.stats.rtos >= 3

    def test_max_retries_fails_flow(self):
        sim = Simulator()
        failed = []
        cfg = TcpConfig(variant=TcpVariant.RENO, max_retries=2, init_rto=0.02)
        host = StubHost()
        sender = TcpSender(sim, host, 1, 5000, MSS, cfg,
                           on_fail=lambda s: failed.append(s))
        sender.start()
        host.deliver(synack(sender, ece=False))
        sim.run(until=10.0)
        assert failed == [sender]
        assert sender.state == "failed"


class TestClassicEcnReaction:
    def test_ece_cuts_once_per_window(self):
        sim = Simulator()
        host, sender = make_sender(sim, variant=TcpVariant.ECN,
                                   init_cwnd_segments=10)
        establish(sim, host, sender)
        cuts_before = sender.stats.cwnd_cuts
        host.deliver(ack(sender, 1 * MSS, ece=True))
        assert sender.stats.cwnd_cuts == cuts_before + 1
        gate = sender.snd_nxt
        # More ECE acks within the same window: no further cuts.
        host.deliver(ack(sender, 2 * MSS, ece=True))
        host.deliver(ack(sender, 3 * MSS, ece=True))
        assert sender.stats.cwnd_cuts == cuts_before + 1
        # Once the gate sequence is passed, a new ECE cuts again.
        host.deliver(ack(sender, gate, ece=True))
        assert sender.stats.cwnd_cuts == cuts_before + 2

    def test_cwr_set_on_next_data_after_cut(self):
        sim = Simulator()
        host, sender = make_sender(sim, variant=TcpVariant.ECN,
                                   init_cwnd_segments=4)
        establish(sim, host, sender)
        host.deliver(ack(sender, 2 * MSS, ece=True))
        # The cut shrank the window below the in-flight bytes, so nothing
        # was transmitted yet; the CWR flag is pending on the next data.
        host.deliver(ack(sender, 4 * MSS))
        newly_sent = [p for p in host.data_packets() if p.seq >= 4 * MSS]
        assert newly_sent, "window should reopen after the acked bytes"
        assert newly_sent[0].has_cwr
        if len(newly_sent) > 1:
            assert not newly_sent[1].has_cwr

    def test_reno_ignores_ece(self):
        sim = Simulator()
        host, sender = make_sender(sim, variant=TcpVariant.RENO)
        establish(sim, host, sender, ece=False)
        cwnd = sender.cc.cwnd
        host.deliver(ack(sender, MSS, ece=True))
        assert sender.cc.cwnd >= cwnd  # grew, no cut


class TestDctcpReaction:
    def test_marked_window_cuts_proportionally(self):
        sim = Simulator()
        host, sender = make_sender(sim, variant=TcpVariant.DCTCP,
                                   init_cwnd_segments=10, dctcp_g=1.0)
        establish(sim, host, sender)
        window_end = sender.snd_nxt
        # ACK the full first window, everything marked.
        cwnd_before = sender.cc.cwnd
        una = 0
        while una < window_end:
            una += MSS
            host.deliver(ack(sender, una, ece=True, marked_bytes=MSS))
        # With g=1 alpha jumped to 1: cut to half at the window boundary.
        assert sender.cc.alpha == pytest.approx(1.0)
        assert sender.stats.cwnd_cuts >= 1

    def test_unmarked_window_never_cuts(self):
        sim = Simulator()
        host, sender = make_sender(sim, variant=TcpVariant.DCTCP,
                                   init_cwnd_segments=10)
        establish(sim, host, sender)
        for i in range(1, 30):
            host.deliver(ack(sender, i * MSS))
        assert sender.stats.cwnd_cuts == 0
