"""Tests for the CwndTracer and the congestion-control shapes it exposes."""

import pytest

from repro.core import DropTail, SimpleMarkingQueue
from repro.net import build_single_rack
from repro.sim import Simulator
from repro.tcp import CwndTracer, TcpConfig, TcpListener, TcpVariant, start_bulk_flow
from repro.units import gbps, mb, us


def traced_run(queue_factory, variant, nbytes=mb(2), n_senders=3):
    sim = Simulator()
    spec = build_single_rack(sim, n_senders + 1, queue_factory,
                             link_rate_bps=gbps(1), link_delay_s=us(20))
    cfg = TcpConfig(variant=variant)
    TcpListener(sim, spec.hosts[0], 5000, cfg)
    tracer = None
    for src in range(1, n_senders + 1):
        flow = start_bulk_flow(sim, spec.hosts[src], spec.hosts[0], 5000,
                               nbytes, cfg)
        if tracer is None:
            tracer = CwndTracer(sim, flow.sender, interval=2e-4)
            tracer.start()
    sim.run(until=60.0)
    return tracer


class TestSampling:
    def test_collects_samples(self):
        tracer = traced_run(lambda nm: DropTail(100, name=nm), TcpVariant.RENO)
        assert len(tracer.cwnd) > 50
        assert len(tracer.cwnd) == len(tracer.flight) == len(tracer.ssthresh)

    def test_autostop_at_flow_end(self):
        tracer = traced_run(lambda nm: DropTail(100, name=nm), TcpVariant.RENO)
        # sampling stopped shortly after the flow finished
        assert tracer.cwnd.times[-1] <= (tracer.sender.end_time or 0) + 1e-3

    def test_alpha_series_only_for_dctcp(self):
        reno = traced_run(lambda nm: DropTail(100, name=nm), TcpVariant.RENO)
        assert reno.alpha is None
        dctcp = traced_run(lambda nm: SimpleMarkingQueue(100, 8, name=nm),
                           TcpVariant.DCTCP)
        assert dctcp.alpha is not None
        assert len(dctcp.alpha) > 0

    def test_cwnd_positive_throughout(self):
        tracer = traced_run(lambda nm: DropTail(30, name=nm), TcpVariant.RENO)
        assert (tracer.cwnd.values > 0).all()


class TestShapes:
    """The quantitative version of the sawtooth pictures."""

    def test_dctcp_cuts_shallower_than_ecn(self):
        ecn = traced_run(lambda nm: SimpleMarkingQueue(100, 8, name=nm),
                         TcpVariant.ECN)
        dctcp = traced_run(lambda nm: SimpleMarkingQueue(100, 8, name=nm),
                           TcpVariant.DCTCP)
        assert ecn.n_cuts() > 0
        assert dctcp.n_cuts() > 0
        # DCTCP's alpha-proportional cuts are much shallower than halving.
        assert dctcp.mean_cut_depth() < 0.6 * ecn.mean_cut_depth()

    def test_dctcp_alpha_stays_in_unit_interval(self):
        dctcp = traced_run(lambda nm: SimpleMarkingQueue(100, 8, name=nm),
                           TcpVariant.DCTCP)
        a = dctcp.alpha.values
        assert (a >= 0).all() and (a <= 1).all()

    def test_no_cuts_without_congestion(self):
        """A solo flow over a huge buffer has nothing to react to."""
        tracer = traced_run(lambda nm: DropTail(4096, name=nm),
                            TcpVariant.RENO, nbytes=mb(1), n_senders=1)
        assert tracer.n_cuts() == 0
