"""Tests for the RED/ECN queue and the paper's protection patch."""

import pytest

from repro.core import ProtectionMode, RedParams, RedQueue
from repro.errors import ConfigError
from repro.net.packet import (
    ECN_ECT0,
    ECN_NOT_ECT,
    FLAG_ACK,
    FLAG_CWR,
    FLAG_ECE,
    FLAG_SYN,
    Packet,
)


def data(ect=True, seq=0):
    return Packet(src=0, sport=1, dst=1, dport=2, seq=seq, payload=1460,
                  ecn=ECN_ECT0 if ect else ECN_NOT_ECT)


def ack(ece=False):
    flags = FLAG_ACK | (FLAG_ECE if ece else 0)
    return Packet(src=1, sport=2, dst=0, dport=1, flags=flags)


def syn(ece=True):
    # An ECN-setup SYN carries ECE|CWR in its TCP header (RFC 3168).
    flags = FLAG_SYN | ((FLAG_ECE | FLAG_CWR) if ece else 0)
    return Packet(src=0, sport=1, dst=1, dport=2, flags=flags)


def step_red(protection=ProtectionMode.DEFAULT, limit=100, th=5, ecn=True):
    """A deterministic RED: instantaneous queue, min==max==th (step marker)."""
    params = RedParams(
        min_th=th, max_th=th, ecn=ecn, use_instantaneous=True,
        gentle=False, protection=protection,
    )
    return RedQueue(limit, params)


def fill(q, n, t=0.0):
    for i in range(n):
        assert q.enqueue(data(seq=i), t)


class TestParams:
    def test_validate_rejects_bad_thresholds(self):
        with pytest.raises(ConfigError):
            RedParams(min_th=0, max_th=5).validate()
        with pytest.raises(ConfigError):
            RedParams(min_th=10, max_th=5).validate()

    def test_validate_rejects_bad_probability(self):
        with pytest.raises(ConfigError):
            RedParams(max_p=0.0).validate()
        with pytest.raises(ConfigError):
            RedParams(max_p=1.5).validate()

    def test_with_protection_copies(self):
        p = RedParams()
        q = p.with_protection(ProtectionMode.ECE)
        assert q.protection is ProtectionMode.ECE
        assert p.protection is ProtectionMode.DEFAULT
        assert q.min_th == p.min_th

    def test_min_equal_max_is_valid(self):
        RedParams(min_th=65, max_th=65).validate()


class TestBelowThreshold:
    def test_no_action_below_min_th(self):
        q = step_red(th=10)
        fill(q, 9)
        a = ack()
        assert q.enqueue(a, 0.0)
        assert q.stats.drops_early == 0
        assert q.stats.marks == 0


class TestEctAsymmetry:
    """The paper's core observation: above threshold, ECT packets are
    marked while non-ECT packets (pure ACKs, SYNs) are early-dropped."""

    def test_ect_marked_not_dropped(self):
        q = step_red(th=3)
        fill(q, 3)
        p = data()
        assert q.enqueue(p, 0.0)
        assert p.is_ce
        assert q.stats.marks == 1
        assert q.stats.drops_early == 0

    def test_pure_ack_early_dropped(self):
        q = step_red(th=3)
        fill(q, 3)
        assert not q.enqueue(ack(), 0.0)
        assert q.stats.drops_early == 1
        assert q.stats.ack_drops == 1

    def test_syn_early_dropped_by_default(self):
        q = step_red(th=3)
        fill(q, 3)
        assert not q.enqueue(syn(ece=False), 0.0)
        assert q.stats.syn_drops == 1

    def test_ecn_disabled_drops_everyone(self):
        q = step_red(th=3, ecn=False)
        fill(q, 3)
        p = data()
        assert not q.enqueue(p, 0.0)
        assert not p.is_ce
        assert q.stats.drops_early == 1


class TestEceProtection:
    """Mode 2: protect packets with ECE in the TCP header."""

    def test_ece_ack_protected(self):
        q = step_red(th=3, protection=ProtectionMode.ECE)
        fill(q, 3)
        assert q.enqueue(ack(ece=True), 0.0)
        assert q.stats.protected == 1
        assert q.stats.drops_early == 0

    def test_plain_ack_still_dropped(self):
        q = step_red(th=3, protection=ProtectionMode.ECE)
        fill(q, 3)
        assert not q.enqueue(ack(ece=False), 0.0)
        assert q.stats.drops_early == 1

    def test_ecn_setup_syn_protected(self):
        q = step_red(th=3, protection=ProtectionMode.ECE)
        fill(q, 3)
        assert q.enqueue(syn(ece=True), 0.0)
        assert q.stats.protected == 1

    def test_synack_protected(self):
        q = step_red(th=3, protection=ProtectionMode.ECE)
        fill(q, 3)
        synack = Packet(src=1, sport=2, dst=0, dport=1,
                        flags=FLAG_SYN | FLAG_ACK | FLAG_ECE)
        assert q.enqueue(synack, 0.0)


class TestAckSynProtection:
    """Mode 3: protect all pure ACKs plus SYN/SYN-ACK."""

    def test_plain_ack_protected(self):
        q = step_red(th=3, protection=ProtectionMode.ACK_SYN)
        fill(q, 3)
        assert q.enqueue(ack(ece=False), 0.0)
        assert q.stats.protected == 1

    def test_non_ecn_syn_protected(self):
        q = step_red(th=3, protection=ProtectionMode.ACK_SYN)
        fill(q, 3)
        assert q.enqueue(syn(ece=False), 0.0)

    def test_non_ect_data_still_dropped(self):
        q = step_red(th=3, protection=ProtectionMode.ACK_SYN)
        fill(q, 3)
        assert not q.enqueue(data(ect=False), 0.0)
        assert q.stats.drops_early == 1


class TestPhysicalLimit:
    """Protection never overrides a full buffer: tail drops hit everyone."""

    def test_protected_ack_tail_dropped_when_full(self):
        q = step_red(th=3, limit=5, protection=ProtectionMode.ACK_SYN)
        fill(q, 3)
        assert q.enqueue(ack(), 0.0)
        assert q.enqueue(ack(), 0.0)  # buffer now at limit 5
        assert not q.enqueue(ack(), 0.0)
        assert q.stats.drops_tail == 1

    def test_ect_tail_dropped_when_full(self):
        q = step_red(th=100, limit=2)
        fill(q, 2)
        p = data()
        assert not q.enqueue(p, 0.0)
        assert q.stats.drops_tail == 1
        assert not p.is_ce


class TestEwmaBehaviour:
    def test_ewma_lags_instantaneous(self):
        params = RedParams(min_th=2, max_th=6, wq=0.002, ecn=True, gentle=True)
        q = RedQueue(100, params)
        # Enqueue a burst: the EWMA (starting at 0, wq tiny) stays below
        # min_th, so no early action despite queue > max_th.
        for i in range(10):
            assert q.enqueue(data(seq=i), 0.0)
        assert q.stats.marks == 0
        assert q.avg < 2

    def test_instantaneous_mode_tracks_queue(self):
        params = RedParams(min_th=2, max_th=2, use_instantaneous=True,
                           gentle=False, ecn=True)
        q = RedQueue(100, params)
        fill(q, 2)
        q.enqueue(data(), 0.0)
        assert q.avg == pytest.approx(2.0)

    def test_idle_decay_reduces_avg(self):
        params = RedParams(min_th=2, max_th=6, wq=0.25, ecn=True)
        q = RedQueue(100, params)
        q.set_link_rate(1e9)
        for i in range(8):
            q.enqueue(data(seq=i), 0.0)
        avg_before = q.avg
        for _ in range(8):
            q.dequeue(0.001)
        # long idle period, then a new arrival triggers decay
        q.enqueue(data(), 1.0)
        assert q.avg < avg_before


class TestTailDropEwma:
    """Regression: the EWMA must see *every* arrival, including ones the
    full buffer tail-drops (NS-2 updates avg before the drop decision).
    Skipping them makes the average lag reality exactly during the
    full-buffer bursts whose drop statistics the paper measures."""

    def test_tail_drop_burst_updates_avg(self):
        params = RedParams(min_th=2, max_th=4, wq=0.5, ecn=True, gentle=True)
        q = RedQueue(5, params)
        fill(q, 5)  # ECT data: early actions are marks, all admitted
        avg_after_fill = q.avg
        assert avg_after_fill < 5.0  # EWMA still lags the full buffer
        for i in range(20):
            assert not q.enqueue(data(seq=100 + i), 0.0)
        assert q.stats.drops_tail == 20
        # The tail-dropped burst drives the average to the true queue
        # length; before the fix it froze at avg_after_fill.
        assert q.avg > avg_after_fill
        assert q.avg == pytest.approx(5.0, rel=1e-3)


class TestProbabilisticBand:
    def test_band_marks_some_fraction(self):
        params = RedParams(min_th=1, max_th=100, max_p=0.5,
                           use_instantaneous=True, ecn=True, gentle=True)
        draws = iter([0.9, 0.0] * 500)
        q = RedQueue(1000, params, rand=lambda: next(draws))
        n_marked = 0
        for i in range(200):
            p = data(seq=i)
            q.enqueue(p, 0.0)
            if p.is_ce:
                n_marked += 1
        assert 0 < n_marked < 200

    def test_gentle_region_between_maxth_and_2maxth(self):
        params = RedParams(min_th=2, max_th=4, max_p=0.1, gentle=True,
                           use_instantaneous=True, ecn=True)
        # rand=0.99 exceeds the raw gentle probability everywhere below
        # 2*max_th, but the uniform-spacing correction still guarantees an
        # action once enough packets have passed since the last one.
        q = RedQueue(100, params, rand=lambda: 0.99)
        for i in range(5):
            q.enqueue(data(seq=i), 0.0)
        assert q.stats.marks == 0  # count hasn't accumulated yet
        q.enqueue(data(seq=5), 0.0)
        assert q.stats.marks == 1  # corrected probability reached 1
        # at 8+ the action is forced regardless of rand
        q.enqueue(data(), 0.0)
        q.enqueue(data(), 0.0)
        p = data()
        q.enqueue(p, 0.0)
        assert p.is_ce

    def test_gentle_actions_uniformly_spaced(self):
        """Regression: the gentle band applies the count correction, so
        with a constant average and a constant rand draw the early
        actions land at an exact fixed spacing (NS-2 ``modify_p``)."""
        params = RedParams(min_th=2, max_th=4, max_p=0.1, gentle=True,
                           use_instantaneous=True, ecn=True)
        # At avg=5: pb = 0.1 + 0.9*(5-4)/4 = 0.325. Raw pb never beats
        # rand=0.95; corrected pa crosses it exactly at count=3.
        q = RedQueue(100, params, rand=lambda: 0.95)
        fill(q, 5)
        marks = []
        for i in range(30):
            p = data(seq=100 + i)
            assert q.enqueue(p, 0.0)
            if p.is_ce:
                marks.append(i)
            q.dequeue(0.0)  # hold the queue at 5, inside the gentle band
        assert len(marks) >= 3
        gaps = {b - a for a, b in zip(marks, marks[1:])}
        assert gaps == {3}


class TestCounters:
    def test_mark_resets_count_spacing(self):
        q = step_red(th=1)
        fill(q, 1)
        for i in range(5):
            q.enqueue(data(seq=i + 1), 0.0)
        assert q.stats.marks == 5  # step marker marks every ECT arrival


class TestFixedKStep:
    """Fixed-K semantics (min_th == max_th == K): the configuration every
    DCTCP deployment runs. gentle=False is a pure step — forced action on
    every arrival at avg >= K; gentle=True ramps max_p -> 1 over [K, 2K)
    and only forces at avg >= 2K. The zero-width probabilistic band must
    not disable the gentle ramp (regression for the ``band > 0`` guard)."""

    def gentle_step(self, rand, k=4, max_p=0.5, ecn=True,
                    protection=ProtectionMode.DEFAULT):
        params = RedParams(min_th=k, max_th=k, max_p=max_p, gentle=True,
                           use_instantaneous=True, ecn=ecn,
                           protection=protection)
        return RedQueue(100, params, rand=rand)

    @pytest.mark.parametrize("protection", list(ProtectionMode))
    def test_pure_step_marks_every_ect_packet(self, protection):
        q = step_red(th=5, protection=protection)
        fill(q, 5)
        for i in range(10):
            p = data(seq=100 + i)
            assert q.enqueue(p, 0.0)
            assert p.is_ce  # ECT data is CE-marked, never early-dropped
        assert q.stats.marks == 10
        assert q.stats.drops_early == 0

    def test_pure_step_default_drops_acks(self):
        q = step_red(th=3, protection=ProtectionMode.DEFAULT)
        fill(q, 3)
        assert not q.enqueue(ack(ece=False), 0.0)
        assert not q.enqueue(ack(ece=True), 0.0)
        assert q.stats.drops_early == 2
        assert q.stats.ack_drops == 2

    def test_pure_step_ece_shields_only_ece_acks(self):
        q = step_red(th=3, protection=ProtectionMode.ECE)
        fill(q, 3)
        assert q.enqueue(ack(ece=True), 0.0)
        assert not q.enqueue(ack(ece=False), 0.0)
        assert q.stats.protected == 1
        assert q.stats.drops_early == 1

    def test_pure_step_ack_syn_shields_all_acks_and_syns(self):
        q = step_red(th=3, protection=ProtectionMode.ACK_SYN)
        fill(q, 3)
        assert q.enqueue(ack(ece=False), 0.0)
        assert q.enqueue(syn(ece=False), 0.0)
        assert q.stats.protected == 2
        assert q.stats.drops_early == 0

    def test_gentle_step_is_probabilistic_below_2k(self):
        # Regression: with min == max the band is zero-width; the old
        # ``band > 0`` gate skipped the gentle branch and force-marked
        # here. avg=5 in [K, 2K) must draw, not force.
        q = self.gentle_step(rand=lambda: 0.99, k=4, max_p=0.1)
        for i in range(5):
            assert q.enqueue(data(seq=i), 0.0)
        p = data(seq=5)  # at avg 5.0: pa = 0.325/0.675 ≈ 0.48 < 0.99
        assert q.enqueue(p, 0.0)
        assert not p.is_ce
        assert q.stats.marks == 0

    def test_gentle_step_marks_on_low_draw(self):
        q = self.gentle_step(rand=lambda: 0.0, k=4)
        for i in range(5):
            q.enqueue(data(seq=i), 0.0)
        p = data(seq=5)
        q.enqueue(p, 0.0)
        assert p.is_ce

    def test_gentle_step_forces_at_2k(self):
        q = self.gentle_step(rand=lambda: 0.99, k=2, max_p=0.01)
        for i in range(4):
            q.enqueue(data(seq=i), 0.0)
        p = data(seq=4)  # arrives at avg 4.0 == 2K: forced regardless
        assert q.enqueue(p, 0.0)
        assert p.is_ce

    @pytest.mark.parametrize("protection", list(ProtectionMode))
    def test_fused_and_base_enqueue_paths_agree(self, protection):
        # RedQueue.enqueue is a fused copy of QueueDisc.enqueue + _admit;
        # drive the same arrival pattern through both and compare.
        from repro.core.qdisc import QueueDisc

        def traffic(q, push):
            for i in range(8):
                push(q, data(seq=i), 0.0)
            push(q, ack(ece=True), 0.0)
            push(q, ack(ece=False), 0.0)
            push(q, syn(ece=False), 0.0)
            push(q, data(ect=False, seq=99), 0.0)

        fused = step_red(th=4, protection=protection)
        base = step_red(th=4, protection=protection)
        traffic(fused, lambda q, p, t: q.enqueue(p, t))
        traffic(base, lambda q, p, t: QueueDisc.enqueue(q, p, t))
        for field in ("arrivals", "marks", "drops_early", "drops_tail",
                      "protected", "ack_drops", "ack_arrivals",
                      "ect_arrivals", "ect_drops", "syn_drops"):
            assert getattr(fused.stats, field) == getattr(base.stats, field)
        assert len(fused) == len(base)
