"""Tests for the Linux-DCTCP flaws pack (Misund, arXiv:2211.07581).

Three layers: the :data:`FLAW_PROFILES` config toggles, the endpoint
behaviors they flip (Non-ECT retransmits, receiver-side mark
coalescing), and the pinned flawed-vs-fixed experiment cell whose
α-inflation the CI smoke gate relies on.
"""

import pytest

from repro.errors import ConfigError
from repro.experiments.flaws import (
    FLAWS_PROFILES,
    flaws_cell,
    flaws_grid,
    render_flaws_table,
)
from repro.experiments.probe import run_probe_cell
from repro.net.packet import ECN_CE, ECN_ECT0, ECN_NOT_ECT, FLAG_CWR, FLAG_ECE, FLAG_SYN, Packet
from repro.sim import Simulator
from repro.tcp import TcpConfig, TcpVariant
from repro.tcp.endpoint import FLAW_PROFILES, TcpListener
from tests.test_tcp_protocol import MSS, StubHost, ack, establish, make_sender


class TestFlawProfiles:
    def test_known_profiles(self):
        assert set(FLAW_PROFILES) == {
            "linux-dctcp", "coalesce", "retx-mark", "alpha-freeze",
        }
        # The pack's table order: corrected stack first, then the union.
        assert FLAWS_PROFILES[0] is None
        assert set(FLAWS_PROFILES[1:]) == set(FLAW_PROFILES)

    def test_none_keeps_corrected_defaults(self):
        cfg = TcpConfig(variant=TcpVariant.DCTCP).with_flaw_profile(None)
        assert cfg.precise_ece_accounting
        assert not cfg.mark_retransmits
        assert cfg.dctcp_rto_window_reset

    def test_linux_dctcp_flips_all_three(self):
        cfg = TcpConfig(variant=TcpVariant.DCTCP).with_flaw_profile("linux-dctcp")
        assert not cfg.precise_ece_accounting
        assert cfg.mark_retransmits
        assert not cfg.dctcp_rto_window_reset

    def test_single_flaw_profiles_flip_one_knob_each(self):
        base = TcpConfig(variant=TcpVariant.DCTCP)
        assert not base.with_flaw_profile("coalesce").precise_ece_accounting
        assert base.with_flaw_profile("coalesce").dctcp_rto_window_reset
        assert base.with_flaw_profile("retx-mark").mark_retransmits
        assert not base.with_flaw_profile("alpha-freeze").dctcp_rto_window_reset

    def test_unknown_profile_raises_with_known_names(self):
        from repro.errors import TcpError

        with pytest.raises(TcpError, match="coalesce"):
            TcpConfig().with_flaw_profile("nagle")


class TestRetransmitMarking:
    def force_fast_retransmit(self, **cfg_kw):
        sim = Simulator()
        host, sender = make_sender(sim, variant=TcpVariant.DCTCP, **cfg_kw)
        first = establish(sim, host, sender)
        assert all(p.ecn == ECN_ECT0 for p in first)
        n_before = len(host.data_packets())
        for _ in range(3):  # three dup ACKs for seq 0
            host.deliver(ack(sender, 0))
        retx = host.data_packets()[n_before]
        assert retx.seq == 0  # the lost head was resent
        return retx

    def test_retransmits_are_nonect_by_default(self):
        # RFC 3168 §6.1.5: retransmitted packets must not be ECT — the
        # corrected stack keeps their marks out of the α estimate.
        retx = self.force_fast_retransmit()
        assert retx.ecn == ECN_NOT_ECT

    def test_retx_mark_flaw_sends_retransmits_ect(self):
        retx = self.force_fast_retransmit(mark_retransmits=True)
        assert retx.ecn == ECN_ECT0


def listener(precise=True, delack_segments=2):
    sim = Simulator()
    host = StubHost(node_id=0)
    cfg = TcpConfig(variant=TcpVariant.DCTCP,
                    precise_ece_accounting=precise,
                    delack_segments=delack_segments)
    lst = TcpListener(sim, host, 5000, cfg)
    host.deliver(Packet(src=1, sport=2, dst=0, dport=5000,
                        flags=FLAG_SYN | FLAG_ECE | FLAG_CWR))
    host.sent.clear()  # drop the SYN-ACK; tests look at data ACKs only
    return sim, host, lst


def seg(seq, ce=False):
    return Packet(src=1, sport=2, dst=0, dport=5000, seq=seq, payload=MSS,
                  ecn=ECN_CE if ce else ECN_ECT0)


class TestReceiverEcho:
    def test_precise_echo_acks_on_ce_state_change(self):
        # SIGCOMM'10 receiver: a CE state flip sends an immediate ACK
        # carrying the *old* state, so the flag stream is byte-accurate.
        sim, host, lst = listener(precise=True)
        host.deliver(seg(0, ce=False))
        assert host.sent == []  # delayed: one unmarked segment pending
        host.deliver(seg(MSS, ce=True))
        assert len(host.sent) == 1  # state change -> immediate ACK
        a = host.sent[0]
        assert not a.has_ece  # old state: not CE
        assert a.ack == MSS  # covers only the bytes seen under that state

    def test_precise_echo_attributes_marked_bytes_once(self):
        sim, host, lst = listener(precise=True)
        host.deliver(seg(0, ce=False))
        host.deliver(seg(MSS, ce=True))       # state-change ACK
        host.deliver(seg(2 * MSS, ce=False))  # state-change ACK (CE -> ECT)
        host.deliver(seg(3 * MSS, ce=False))  # delayed-ACK cadence fires
        assert sum(p.marked_bytes for p in host.sent) == MSS
        assert host.sent[-1].ack == 4 * MSS

    def test_coalesced_echo_latches_one_mark_over_whole_window(self):
        # The Misund coalescing flaw: no state-change ACKs, and a single
        # CE segment sets ECE on the covering delayed ACK — the flag-only
        # sender then counts both segments' bytes as marked.
        sim, host, lst = listener(precise=False)
        host.deliver(seg(0, ce=True))
        assert host.sent == []  # no state-change ACK in coalesced mode
        host.deliver(seg(MSS, ce=False))
        assert len(host.sent) == 1
        a = host.sent[0]
        assert a.has_ece
        assert a.ack == 2 * MSS

    def test_coalesced_latch_consumed_by_ack(self):
        sim, host, lst = listener(precise=False)
        host.deliver(seg(0, ce=True))
        host.deliver(seg(MSS, ce=False))
        host.deliver(seg(2 * MSS, ce=False))
        host.deliver(seg(3 * MSS, ce=False))
        assert host.sent[0].has_ece
        assert not host.sent[1].has_ece  # clean window, clean flag


class TestFlawsCells:
    def test_grid_covers_all_profiles(self):
        grid = flaws_grid()
        assert len(grid) == len(FLAWS_PROFILES)
        assert grid[0].flaw_profile is None
        assert {c.flaw_profile for c in grid[1:]} == set(FLAW_PROFILES)

    def test_labels_carry_flaw_suffix(self):
        assert "!" not in flaws_cell(None).label()
        assert flaws_cell("coalesce").label().endswith("!coalesce")

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigError):
            flaws_cell("quic")

    def test_pinned_cell_reproduces_alpha_inflation(self):
        # The acceptance pathology on a short horizon: the coalescing
        # flaw shows measurably higher time-averaged α and no higher
        # goodput than the corrected stack on the pinned tiny-buffer
        # incast (the CI smoke runs the full 1 s version of this).
        fixed = run_probe_cell(flaws_cell(None, duration_s=0.3))
        flawed = run_probe_cell(flaws_cell("coalesce", duration_s=0.3))
        a_fixed = fixed.metrics.extra["dctcp_alpha_timeavg"]
        a_flawed = flawed.metrics.extra["dctcp_alpha_timeavg"]
        assert a_flawed > a_fixed * 1.01
        assert (flawed.metrics.extra["goodput_bps"]
                <= fixed.metrics.extra["goodput_bps"] * 1.005)
        # Round-trip: the profile and cc knobs land in the manifest.
        assert flawed.manifest["config"]["flaw_profile"] == "coalesce"
        assert "cc" in flawed.manifest["config"]

    def test_render_table_shows_delta_vs_fixed(self):
        rows = [
            {"profile": "fixed", "label": "a", "alpha_timeavg": 0.5,
             "alpha_mean": 0.5, "alpha_max": 0.6, "goodput_bps": 1e9,
             "retransmits": 1, "rtos": 0, "marks": 10, "drops": 2},
            {"profile": "coalesce", "label": "b", "alpha_timeavg": 0.55,
             "alpha_mean": 0.55, "alpha_max": 0.7, "goodput_bps": 9e8,
             "retransmits": 2, "rtos": 1, "marks": 12, "drops": 3},
        ]
        table = render_flaws_table(rows)
        assert "fixed" in table
        assert "(+10% vs fixed)" in table


class TestFuzzerAxes:
    def test_new_axes_registered(self):
        from repro.validate.fuzz import _CCS, _QDISCS

        assert {"curvyred", "tinybuffer"} <= set(_QDISCS)
        assert {"", "cubic", "d2tcp"} == set(_CCS)

    def test_scenario_rejects_unknown_cc(self):
        from repro.validate.fuzz import Scenario
        from repro.errors import ValidationError

        Scenario(cc="cubic").validate()
        with pytest.raises(ValidationError):
            Scenario(cc="vegas").validate()

    def test_zoo_scenario_runs_clean(self):
        from repro.validate.fuzz import Scenario, run_scenario

        res = run_scenario(Scenario(
            qdisc="curvyred", cc="cubic", n_flows=2, flow_bytes=20_000,
            seed=7))
        assert res.ok, res.violations
        assert res.completed_flows == 2
