"""Integration tests for the TCP endpoints over a real simulated network."""

import pytest

from repro.core import DropTail, RedQueue, RedParams, SimpleMarkingQueue, ProtectionMode
from repro.errors import TcpError
from repro.net import build_single_rack
from repro.net.packet import ECN_ECT0, ECN_NOT_ECT, FLAG_ECE, FLAG_SYN
from repro.sim import Simulator
from repro.tcp import TcpConfig, TcpListener, TcpVariant, start_bulk_flow
from repro.units import gbps, kb, mb, us


def rack(sim, qf=None, n=4, rate=gbps(1)):
    return build_single_rack(sim, n, qf or (lambda nm: DropTail(200, name=nm)),
                             link_rate_bps=rate, link_delay_s=us(20))


def transfer(sim, spec, nbytes, variant=TcpVariant.ECN, src=0, dst=1,
             cfg=None, until=20.0):
    cfg = cfg or TcpConfig(variant=variant)
    listener = TcpListener(sim, spec.hosts[dst], 5000, cfg)
    results = []
    start_bulk_flow(sim, spec.hosts[src], spec.hosts[dst], 5000, nbytes, cfg,
                    on_done=lambda r: results.append(r))
    sim.run(until=until)
    return results, listener


class TestHandshake:
    def test_connection_establishes(self):
        sim = Simulator()
        spec = rack(sim)
        results, _ = transfer(sim, spec, kb(10))
        assert len(results) == 1
        assert results[0].established_time is not None
        assert results[0].established_time > results[0].start_time

    def test_ecn_negotiated_data_is_ect(self):
        sim = Simulator()
        spec = rack(sim)
        seen = []
        spec.hosts[1].add_delivery_hook(lambda p, t: seen.append(p))
        transfer(sim, spec, kb(10), variant=TcpVariant.ECN)
        data = [p for p in seen if p.payload > 0]
        assert data and all(p.ecn == ECN_ECT0 for p in data)

    def test_reno_data_is_not_ect(self):
        sim = Simulator()
        spec = rack(sim)
        seen = []
        spec.hosts[1].add_delivery_hook(lambda p, t: seen.append(p))
        transfer(sim, spec, kb(10), variant=TcpVariant.RENO)
        data = [p for p in seen if p.payload > 0]
        assert data and all(p.ecn == ECN_NOT_ECT for p in data)

    def test_syn_carries_ece_cwr_when_ecn(self):
        sim = Simulator()
        spec = rack(sim)
        seen = []
        spec.hosts[1].add_delivery_hook(lambda p, t: seen.append(p))
        transfer(sim, spec, kb(1), variant=TcpVariant.ECN)
        syns = [p for p in seen if p.flags & FLAG_SYN]
        assert syns and all(p.has_ece and p.has_cwr for p in syns)
        assert all(not p.is_ect for p in syns)  # SYN itself is Non-ECT

    def test_plain_syn_without_ecn(self):
        sim = Simulator()
        spec = rack(sim)
        seen = []
        spec.hosts[1].add_delivery_hook(lambda p, t: seen.append(p))
        transfer(sim, spec, kb(1), variant=TcpVariant.RENO)
        syns = [p for p in seen if p.flags & FLAG_SYN]
        assert syns and all(not p.has_ece for p in syns)

    def test_acks_are_never_ect(self):
        """RFC 3168: pure ACKs are sent Non-ECT — the paper's crux."""
        sim = Simulator()
        spec = rack(sim)
        seen = []
        spec.hosts[0].add_delivery_hook(lambda p, t: seen.append(p))  # sender side
        transfer(sim, spec, mb(1), variant=TcpVariant.ECN)
        acks = [p for p in seen if p.is_pure_ack]
        assert len(acks) > 50
        assert all(p.ecn == ECN_NOT_ECT for p in acks)


class TestBulkTransfer:
    @pytest.mark.parametrize("variant", list(TcpVariant))
    def test_full_delivery_all_variants(self, variant):
        sim = Simulator()
        spec = rack(sim)
        results, listener = transfer(sim, spec, mb(1), variant=variant)
        assert len(results) == 1
        assert not results[0].failed
        st = next(iter(listener.flows.values()))
        assert st.rcv_nxt == mb(1)

    def test_goodput_near_line_rate(self):
        sim = Simulator()
        spec = rack(sim)
        results, _ = transfer(sim, spec, mb(4))
        # 4 MB on an uncongested 1 Gbps path: expect > 80% of line rate.
        assert results[0].goodput_bps > 0.8e9

    def test_no_retransmits_without_congestion(self):
        sim = Simulator()
        spec = rack(sim)
        results, _ = transfer(sim, spec, mb(1))
        assert results[0].retransmits == 0
        assert results[0].rtos == 0

    def test_tiny_flow(self):
        sim = Simulator()
        spec = rack(sim)
        results, _ = transfer(sim, spec, 100)
        assert not results[0].failed

    def test_flow_size_must_be_positive(self):
        sim = Simulator()
        spec = rack(sim)
        cfg = TcpConfig()
        with pytest.raises(TcpError):
            start_bulk_flow(sim, spec.hosts[0], spec.hosts[1], 5000, 0, cfg)


class TestLossRecovery:
    def test_recovers_through_tiny_buffer(self):
        """A 10-packet DropTail forces losses; the flow must still finish."""
        sim = Simulator()
        spec = rack(sim, qf=lambda nm: DropTail(10, name=nm))
        # two competing flows to force drops
        cfg = TcpConfig(variant=TcpVariant.RENO)
        l1 = TcpListener(sim, spec.hosts[1], 5000, cfg)
        l2 = TcpListener(sim, spec.hosts[1], 5001, cfg)
        results = []
        start_bulk_flow(sim, spec.hosts[0], spec.hosts[1], 5000, mb(1), cfg,
                        on_done=lambda r: results.append(r))
        start_bulk_flow(sim, spec.hosts[2], spec.hosts[1], 5001, mb(1), cfg,
                        on_done=lambda r: results.append(r))
        sim.run(until=60.0)
        assert len(results) == 2
        assert all(not r.failed for r in results)
        assert sum(r.retransmits for r in results) > 0

    def test_receiver_data_complete_despite_loss(self):
        sim = Simulator()
        spec = rack(sim, qf=lambda nm: DropTail(8, name=nm))
        cfg = TcpConfig(variant=TcpVariant.RENO)
        listener = TcpListener(sim, spec.hosts[1], 5000, cfg)
        done = []
        for src in (0, 2, 3):
            start_bulk_flow(sim, spec.hosts[src], spec.hosts[1], 5000, kb(500),
                            cfg, on_done=lambda r: done.append(r))
        sim.run(until=60.0)
        assert len(done) == 3
        for st in listener.flows.values():
            assert st.rcv_nxt == kb(500)


class TestEcnReaction:
    def test_ecn_flow_sees_marks_and_cuts(self):
        sim = Simulator()
        params = RedParams(min_th=5, max_th=15, use_instantaneous=True, ecn=True)
        spec = rack(sim, qf=lambda nm: RedQueue(100, params, name=nm))
        cfg = TcpConfig(variant=TcpVariant.ECN)
        listener = TcpListener(sim, spec.hosts[1], 5000, cfg)
        results = []
        for src in (0, 2, 3):
            start_bulk_flow(sim, spec.hosts[src], spec.hosts[1], 5000, mb(1),
                            cfg, on_done=lambda r: results.append(r))
        sim.run(until=60.0)
        assert len(results) == 3
        st = spec.network.aggregate_switch_stats()
        assert st.marks > 0

    def test_dctcp_keeps_queue_near_threshold(self):
        sim = Simulator()
        K = 10
        spec = rack(sim, qf=lambda nm: SimpleMarkingQueue(500, K, name=nm))
        cfg = TcpConfig(variant=TcpVariant.DCTCP)
        listener = TcpListener(sim, spec.hosts[1], 5000, cfg)
        results = []
        for src in (0, 2, 3):
            start_bulk_flow(sim, spec.hosts[src], spec.hosts[1], 5000, mb(2),
                            cfg, on_done=lambda r: results.append(r))
        sim.run(until=60.0)
        assert len(results) == 3
        # The congested ToR downlink queue should have stayed shallow:
        # DCTCP holds occupancy near K, far below the 500-packet buffer.
        hot = spec.hot_ports[1].qdisc  # downlink toward hosts[1]
        mean_q = hot.stats.mean_queue_packets(results[-1].end_time)
        assert mean_q < 5 * K

    def test_dctcp_no_drops_with_marking_queue(self):
        sim = Simulator()
        spec = rack(sim, qf=lambda nm: SimpleMarkingQueue(500, 10, name=nm))
        cfg = TcpConfig(variant=TcpVariant.DCTCP)
        listener = TcpListener(sim, spec.hosts[1], 5000, cfg)
        results = []
        for src in (0, 2, 3):
            start_bulk_flow(sim, spec.hosts[src], spec.hosts[1], 5000, mb(1),
                            cfg, on_done=lambda r: results.append(r))
        sim.run(until=60.0)
        st = spec.network.aggregate_switch_stats()
        assert st.drops == 0
        assert all(r.retransmits == 0 for r in results)


class TestDelayedAcks:
    def test_delack_reduces_ack_count(self):
        sim = Simulator()
        spec = rack(sim)
        acks = []
        spec.hosts[0].add_delivery_hook(
            lambda p, t: acks.append(p) if p.is_pure_ack else None
        )
        cfg = TcpConfig(variant=TcpVariant.RENO, delack_segments=2)
        listener = TcpListener(sim, spec.hosts[1], 5000, cfg)
        start_bulk_flow(sim, spec.hosts[0], spec.hosts[1], 5000, mb(1), cfg)
        sim.run(until=20.0)
        n_segments = mb(1) // cfg.mss + 1
        # About one ACK per two segments (plus handshake/timeout extras).
        assert len(acks) < 0.75 * n_segments

    def test_delack_timeout_flushes(self):
        """A flow smaller than the delack threshold still gets ACKed."""
        sim = Simulator()
        spec = rack(sim)
        cfg = TcpConfig(variant=TcpVariant.RENO, delack_segments=4,
                        delack_timeout=0.001)
        listener = TcpListener(sim, spec.hosts[1], 5000, cfg)
        results = []
        start_bulk_flow(sim, spec.hosts[0], spec.hosts[1], 5000, 500, cfg,
                        on_done=lambda r: results.append(r))
        sim.run(until=5.0)
        assert len(results) == 1 and not results[0].failed


class TestListener:
    def test_one_listener_serves_many_flows(self):
        sim = Simulator()
        spec = rack(sim, n=6)
        cfg = TcpConfig()
        listener = TcpListener(sim, spec.hosts[0], 5000, cfg)
        results = []
        for src in range(1, 6):
            start_bulk_flow(sim, spec.hosts[src], spec.hosts[0], 5000, kb(100),
                            cfg, on_done=lambda r: results.append(r))
        sim.run(until=30.0)
        assert len(results) == 5
        assert len(listener.flows) == 5

    def test_progress_callback_monotonic(self):
        sim = Simulator()
        spec = rack(sim)
        seen = []
        cfg = TcpConfig()
        listener = TcpListener(sim, spec.hosts[1], 5000, cfg,
                               on_progress=lambda k, st: seen.append(st.rcv_nxt))
        start_bulk_flow(sim, spec.hosts[0], spec.hosts[1], 5000, kb(200), cfg)
        sim.run(until=10.0)
        assert seen == sorted(seen)
        assert seen[-1] == kb(200)

    def test_close_unbinds(self):
        sim = Simulator()
        spec = rack(sim)
        cfg = TcpConfig()
        listener = TcpListener(sim, spec.hosts[1], 5000, cfg)
        listener.close()
        # Port free again: rebinding must not raise.
        TcpListener(sim, spec.hosts[1], 5000, cfg)
