"""Tests for repro.units conversions and formatting."""

import pytest

from repro import units as u


class TestRates:
    def test_bps_identity(self):
        assert u.bps(5) == 5.0

    def test_kbps(self):
        assert u.kbps(2) == 2_000.0

    def test_mbps(self):
        assert u.mbps(3) == 3_000_000.0

    def test_gbps(self):
        assert u.gbps(1) == 1_000_000_000.0

    def test_gbps_fractional(self):
        assert u.gbps(2.5) == 2.5e9


class TestTimes:
    def test_seconds_identity(self):
        assert u.seconds(1.5) == 1.5

    def test_minutes(self):
        assert u.minutes(2) == 120.0

    def test_ms(self):
        assert u.ms(250) == pytest.approx(0.25)

    def test_us(self):
        assert u.us(100) == pytest.approx(1e-4)

    def test_ns(self):
        assert u.ns(500) == pytest.approx(5e-7)


class TestSizes:
    def test_b(self):
        assert u.b(42) == 42

    def test_kb(self):
        assert u.kb(64) == 64_000

    def test_mb(self):
        assert u.mb(1.5) == 1_500_000

    def test_gb(self):
        assert u.gb(2) == 2_000_000_000

    def test_kib(self):
        assert u.kib(4) == 4096

    def test_mib(self):
        assert u.mib(1) == 1_048_576

    def test_gib(self):
        assert u.gib(1) == 1_073_741_824

    def test_sizes_are_ints(self):
        assert isinstance(u.mb(1.5), int)
        assert isinstance(u.kib(3), int)


class TestConversions:
    def test_bits_bytes_roundtrip(self):
        assert u.bytes_to_bits(u.bits_to_bytes(1024)) == 1024

    def test_serialization_delay_1500B_1gbps(self):
        # 1500 bytes at 1 Gbps = 12 microseconds
        assert u.serialization_delay(1500, u.gbps(1)) == pytest.approx(12e-6)

    def test_serialization_delay_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            u.serialization_delay(1500, 0)

    def test_bdp(self):
        # 1 Gbps x 1 ms RTT = 125 KB
        assert u.bandwidth_delay_product(u.gbps(1), u.ms(1)) == pytest.approx(125_000)


class TestFormatting:
    @pytest.mark.parametrize(
        "t,expected",
        [
            (1.5, "1.500s"),
            (0.0, "0.000s"),
            (2e-3, "2.000ms"),
            (5e-6, "5.000us"),
            (3e-9, "3.0ns"),
        ],
    )
    def test_fmt_time(self, t, expected):
        assert u.fmt_time(t) == expected

    @pytest.mark.parametrize(
        "r,expected",
        [
            (1e9, "1.000Gbps"),
            (2.5e6, "2.500Mbps"),
            (9e3, "9.000Kbps"),
            (100.0, "100.0bps"),
        ],
    )
    def test_fmt_rate(self, r, expected):
        assert u.fmt_rate(r) == expected

    @pytest.mark.parametrize(
        "n,expected",
        [
            (2e9, "2.000GB"),
            (1.5e6, "1.500MB"),
            (64e3, "64.000KB"),
            (150, "150B"),
        ],
    )
    def test_fmt_bytes(self, n, expected):
        assert u.fmt_bytes(n) == expected
