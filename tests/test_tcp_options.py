"""Tests for the opt-in TCP extensions: ECN+ (ECT SYNs) and RFC 3042
limited transmit."""

import pytest

from repro.core import DropTail, RedParams, RedQueue
from repro.net import build_single_rack
from repro.net.packet import ECN_ECT0, ECN_NOT_ECT, FLAG_SYN, Packet
from repro.sim import Simulator
from repro.tcp import TcpConfig, TcpListener, TcpVariant, start_bulk_flow
from repro.units import gbps, kb, us

from tests.test_tcp_protocol import StubHost, ack, establish, make_sender, synack

MSS = 1460


class TestEctSyn:
    def test_syn_is_ect_when_enabled(self):
        sim = Simulator()
        host, sender = make_sender(sim, ect_syn=True)
        sender.start()
        syn = host.sent[0]
        assert syn.is_syn
        assert syn.ecn == ECN_ECT0

    def test_syn_stays_non_ect_by_default(self):
        sim = Simulator()
        host, sender = make_sender(sim)
        sender.start()
        assert host.sent[0].ecn == ECN_NOT_ECT

    def test_reno_never_sends_ect_syn(self):
        """ECN+ only makes sense with ECN negotiated."""
        sim = Simulator()
        host, sender = make_sender(sim, variant=TcpVariant.RENO, ect_syn=True)
        sender.start()
        assert host.sent[0].ecn == ECN_NOT_ECT

    def test_synack_is_ect_when_enabled(self):
        sim = Simulator()
        cfg = TcpConfig(variant=TcpVariant.ECN, ect_syn=True)
        rx = StubHost(node_id=1)
        TcpListener(sim, rx, 5000, cfg)
        rx.deliver(Packet(src=0, sport=7777, dst=1, dport=5000,
                          flags=FLAG_SYN | 0x40 | 0x80, ecn=ECN_NOT_ECT))
        assert rx.sent[0].is_syn
        assert rx.sent[0].ecn == ECN_ECT0

    def test_ect_syn_marked_not_dropped_by_red(self):
        """End to end: an aggressive RED marks ECT SYNs instead of
        dropping them, so connections establish without timeouts even
        through a saturated queue (the host-side alternative to the
        paper's switch-side SYN protection)."""
        sim = Simulator()
        params = RedParams(min_th=1, max_th=3, max_p=1.0, gentle=False,
                           use_instantaneous=True, ecn=True)
        spec = build_single_rack(
            sim, 4, lambda nm: RedQueue(100, params, name=nm),
            link_rate_bps=gbps(1), link_delay_s=us(20),
        )
        cfg = TcpConfig(variant=TcpVariant.ECN, ect_syn=True)
        TcpListener(sim, spec.hosts[0], 5000, cfg)
        results = []
        for src in (1, 2, 3):
            start_bulk_flow(sim, spec.hosts[src], spec.hosts[0], 5000,
                            kb(300), cfg, on_done=lambda r: results.append(r))
        sim.run(until=60.0)
        assert len(results) == 3
        assert sum(r.syn_retries for r in results) == 0
        st = spec.network.aggregate_switch_stats()
        assert st.syn_drops == 0


class TestLimitedTransmit:
    def test_first_two_dup_acks_send_new_data(self):
        sim = Simulator()
        host, sender = make_sender(sim, variant=TcpVariant.RENO,
                                   limited_transmit=True,
                                   init_cwnd_segments=4, nbytes=100 * MSS)
        establish(sim, host, sender, ece=False)
        n = len(host.data_packets())
        frontier = sender.snd_nxt
        host.deliver(ack(sender, 0))  # dup 1
        host.deliver(ack(sender, 0))  # dup 2
        new = host.data_packets()[n:]
        assert [p.seq for p in new] == [frontier, frontier + MSS]
        assert sender.stats.fast_retransmits == 0

    def test_disabled_by_default(self):
        sim = Simulator()
        host, sender = make_sender(sim, variant=TcpVariant.RENO,
                                   init_cwnd_segments=4)
        establish(sim, host, sender, ece=False)
        n = len(host.data_packets())
        host.deliver(ack(sender, 0))
        host.deliver(ack(sender, 0))
        assert len(host.data_packets()) == n

    def test_third_dup_still_fast_retransmits(self):
        sim = Simulator()
        host, sender = make_sender(sim, variant=TcpVariant.RENO,
                                   limited_transmit=True,
                                   init_cwnd_segments=4, nbytes=100 * MSS)
        establish(sim, host, sender, ece=False)
        for _ in range(3):
            host.deliver(ack(sender, 0))
        assert sender.stats.fast_retransmits == 1

    def test_no_limited_transmit_when_no_new_data(self):
        sim = Simulator()
        host, sender = make_sender(sim, variant=TcpVariant.RENO,
                                   limited_transmit=True,
                                   init_cwnd_segments=10, nbytes=2 * MSS)
        establish(sim, host, sender, ece=False)
        n = len(host.data_packets())
        host.deliver(ack(sender, 0))
        assert len(host.data_packets()) == n  # everything already sent

    def test_end_to_end_with_losses(self):
        """Limited transmit must not break recovery over a lossy fabric."""
        sim = Simulator()
        spec = build_single_rack(sim, 4, lambda nm: DropTail(10, name=nm),
                                 link_rate_bps=gbps(1), link_delay_s=us(20))
        cfg = TcpConfig(variant=TcpVariant.RENO, limited_transmit=True)
        TcpListener(sim, spec.hosts[0], 5000, cfg)
        results = []
        for src in (1, 2, 3):
            start_bulk_flow(sim, spec.hosts[src], spec.hosts[0], 5000,
                            kb(500), cfg, on_done=lambda r: results.append(r))
        sim.run(until=60.0)
        assert len(results) == 3
        assert all(not r.failed for r in results)
