"""Tests for the experiment harness: configs, runner, figures, tables."""

from dataclasses import replace

import pytest

from repro.core import DropTail, ProtectionMode, RedQueue, SimpleMarkingQueue
from repro.errors import ConfigError, ExperimentError
from repro.experiments import (
    DEEP_BUFFER_PACKETS,
    SHALLOW_BUFFER_PACKETS,
    ExperimentConfig,
    QueueSetup,
    run_cell,
)
from repro.experiments.config import CellResult
from repro.experiments.grids import baseline_configs, figure_grid
from repro.experiments.tables import verify_table1, verify_table2
from repro.sim.rng import RngRegistry
from repro.tcp import TcpVariant
from repro.units import gbps, mb, us


def tiny(queue: QueueSetup, variant=TcpVariant.ECN, **kw) -> ExperimentConfig:
    """A fast cell: 8 hosts, 8 MB Terasort in 1 MB blocks."""
    return replace(
        ExperimentConfig(queue=queue, variant=variant),
        n_hosts=8, data_bytes=mb(8), block_bytes=mb(1), n_reducers=8, **kw
    )


class TestQueueSetup:
    def test_droptail_build(self):
        q = QueueSetup(kind="droptail").build("p", gbps(1), RngRegistry(0))
        assert isinstance(q, DropTail)
        assert q.limit_packets == SHALLOW_BUFFER_PACKETS

    def test_red_build(self):
        qs = QueueSetup(kind="red", target_delay_s=us(200))
        q = qs.build("p", gbps(1), RngRegistry(0))
        assert isinstance(q, RedQueue)
        assert q.params.min_th == 17  # 200us * 1Gbps / (8 * 1500B)

    def test_marking_build(self):
        qs = QueueSetup(kind="marking", target_delay_s=us(120))
        q = qs.build("p", gbps(1), RngRegistry(0))
        assert isinstance(q, SimpleMarkingQueue)
        assert q.mark_threshold == 10

    def test_red_requires_target_delay(self):
        with pytest.raises(ConfigError):
            QueueSetup(kind="red").validate()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            QueueSetup(kind="codel").validate()

    def test_labels(self):
        assert QueueSetup(kind="droptail").label() == "droptail-shallow"
        assert QueueSetup(
            kind="droptail", buffer_packets=DEEP_BUFFER_PACKETS
        ).label() == "droptail-deep"
        assert QueueSetup(
            kind="red", target_delay_s=us(1), protection=ProtectionMode.ACK_SYN
        ).label() == "red-ack+syn"
        assert QueueSetup(kind="marking", target_delay_s=us(1)).label() == "marking"


class TestExperimentConfig:
    def test_scaled_shrinks_data(self):
        cfg = ExperimentConfig(queue=QueueSetup(kind="droptail"))
        assert cfg.scaled(0.5).data_bytes == cfg.data_bytes // 2

    def test_scaled_rejects_nonpositive(self):
        cfg = ExperimentConfig(queue=QueueSetup(kind="droptail"))
        with pytest.raises(ConfigError):
            cfg.scaled(0)

    def test_label_contains_parts(self):
        cfg = ExperimentConfig(
            queue=QueueSetup(kind="red", target_delay_s=us(100)),
            variant=TcpVariant.DCTCP,
        )
        assert "dctcp" in cfg.label()
        assert "100us" in cfg.label()
        assert "shallow" in cfg.label()


class TestRunCell:
    def test_droptail_cell_runs(self):
        cell = run_cell(tiny(QueueSetup(kind="droptail")))
        assert isinstance(cell, CellResult)
        assert cell.runtime > 0
        assert cell.metrics.packets_delivered > 1000
        assert cell.metrics.queue.marks == 0

    def test_red_cell_marks(self):
        # 50 us keeps the RED band well inside the shallow buffer so the
        # EWMA reliably crosses min_th even at this tiny data scale.
        cell = run_cell(tiny(QueueSetup(kind="red", target_delay_s=us(50))))
        assert cell.metrics.queue.marks > 0
        assert cell.metrics.queue.drops_early > 0

    def test_marking_cell_never_early_drops(self):
        cell = run_cell(tiny(QueueSetup(kind="marking", target_delay_s=us(100))))
        assert cell.metrics.queue.drops_early == 0

    def test_determinism(self):
        cfg = tiny(QueueSetup(kind="red", target_delay_s=us(100)))
        a = run_cell(cfg)
        b = run_cell(cfg)
        assert a.runtime == b.runtime
        assert a.metrics.mean_latency == b.metrics.mean_latency

    def test_seed_changes_results(self):
        cfg = tiny(QueueSetup(kind="droptail"))
        a = run_cell(cfg)
        b = run_cell(replace(cfg, seed=7))
        assert a.runtime != b.runtime

    def test_monitoring_produces_snapshots(self):
        cell = run_cell(tiny(QueueSetup(kind="droptail"),
                             monitor_interval_s=0.005))
        assert cell.snapshots

    def test_throughput_consistent_with_runtime(self):
        cell = run_cell(tiny(QueueSetup(kind="droptail")))
        m = cell.metrics
        expect = m.bytes_transferred * 8 / m.runtime / m.n_nodes
        assert m.throughput_per_node_bps == pytest.approx(expect)

    def test_horizon_violation_raises(self):
        cfg = replace(tiny(QueueSetup(kind="droptail")), sim_horizon_s=0.001)
        with pytest.raises(ExperimentError):
            run_cell(cfg)


class TestGrids:
    def test_figure_grid_shape(self):
        cells = figure_grid(deep=False)
        # 2 variants x (3 protections + marking) x 5 delays
        assert len(cells) == 2 * 4 * 5
        labels = {c.label() for c in cells}
        assert len(labels) == len(cells)  # all distinct

    def test_deep_grid_uses_deep_buffers(self):
        cells = figure_grid(deep=True)
        assert all(c.queue.buffer_packets == DEEP_BUFFER_PACKETS for c in cells)

    def test_baselines(self):
        b = baseline_configs()
        assert set(b) == {"droptail-shallow", "droptail-deep"}
        assert b["droptail-shallow"].queue.kind == "droptail"
        assert b["droptail-deep"].queue.is_deep

    def test_grid_scale_applied(self):
        cells = figure_grid(deep=False, scale=0.25)
        full = figure_grid(deep=False, scale=1.0)
        assert cells[0].data_bytes == full[0].data_bytes // 4


class TestTables:
    def test_table1_verified(self):
        assert all(ok for _, ok in verify_table1())

    def test_table2_verified(self):
        assert all(ok for _, ok in verify_table2())
