"""Tests for the CLI (fast paths only; sweeps are covered by benchmarks)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tables_parses(self):
        args = build_parser().parse_args(["tables"])
        assert args.command == "tables"

    def test_fig2_deep_flag(self):
        args = build_parser().parse_args(["fig2", "--deep", "--scale", "0.5"])
        assert args.deep and args.scale == 0.5

    def test_cell_options(self):
        args = build_parser().parse_args([
            "cell", "--queue", "marking", "--variant", "dctcp",
            "--target-delay-us", "120",
        ])
        assert args.queue == "marking"
        assert args.variant == "dctcp"
        assert args.target_delay_us == 120.0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])

    def test_sweep_options_parse(self):
        args = build_parser().parse_args([
            "sweep", "--deep", "--jobs", "4", "--cache-dir", "/tmp/c",
            "--resume", "--limit", "3", "--manifest", "m.json",
        ])
        assert args.command == "sweep"
        assert args.deep and args.jobs == 4 and args.resume
        assert args.cache_dir == "/tmp/c"
        assert args.limit == 3 and args.manifest == "m.json"

    def test_fig_jobs_flag_parses(self):
        args = build_parser().parse_args(["fig3", "--jobs", "2"])
        assert args.jobs == 2


class TestSweepErrors:
    def test_resume_requires_cache_dir(self, capsys):
        assert main(["sweep", "--resume"]) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_jobs_must_be_positive(self, capsys):
        assert main(["sweep", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_limit_must_be_positive(self, capsys):
        assert main(["sweep", "--limit", "0"]) == 2
        assert "--limit" in capsys.readouterr().err

    def test_fig_jobs_must_be_positive(self, capsys):
        assert main(["fig2", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_cache_dir_collision_with_file(self, tmp_path, capsys):
        f = tmp_path / "a-file"
        f.write_text("x")
        rc = main(["sweep", "--limit", "1", "--cache-dir", str(f)])
        assert rc == 2
        assert "not a directory" in capsys.readouterr().err


class TestSweepRuns:
    def test_sweep_limit_jobs_and_resume(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        manifest = tmp_path / "sweep.json"
        base = ["sweep", "--limit", "2", "--jobs", "2",
                "--scale", "0.03125", "--quiet",
                "--cache-dir", cache_dir, "--manifest", str(manifest)]
        assert main(base) == 0
        out = capsys.readouterr().out
        assert "2 executed, 0 cached" in out

        import json

        doc = json.loads(manifest.read_text())
        assert doc["kind"] == "sweep"
        assert doc["jobs"] == 2
        assert len(doc["cells"]) == 2
        assert len(doc["executed"]) == 2 and doc["cached"] == []

        # Immediate re-run with --resume executes zero cells.
        assert main(base + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "0 executed, 2 cached" in out


class TestCommands:
    def test_tables_output(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "TABLE II" in out
        assert "ECN-Echo flag" in out

    def test_cell_droptail_tiny(self, capsys):
        rc = main(["cell", "--queue", "droptail", "--variant", "newreno",
                   "--scale", "0.03125"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "runtime" in out
        assert "tput/node" in out

    def test_cell_marking_tiny(self, capsys):
        rc = main(["cell", "--queue", "marking", "--variant", "dctcp",
                   "--target-delay-us", "100", "--scale", "0.03125"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "marking" in out


class TestCacheVerb:
    @staticmethod
    def _seed(tmp_path, n=2):
        """A cache directory with ``n`` synthetic 2h-old entries."""
        import json
        import os
        import time

        from repro.experiments.cache import CACHE_SCHEMA, ResultCache

        cache_dir = str(tmp_path / "cache")
        ResultCache(cache_dir)  # creates the directory
        old = time.time() - 7200
        for i in range(n):
            key = f"{i:064x}"
            path = os.path.join(cache_dir, key + ".json")
            with open(path, "w") as fh:
                json.dump({"schema": CACHE_SCHEMA, "key": key,
                           "label": f"cell-{i}"}, fh)
            os.utime(path, (old, old))
        return cache_dir

    def test_prune_dry_run_counts_entries_once(self, tmp_path, capsys):
        """Regression: with --dry-run nothing is deleted, so the doomed
        entries must not be double-counted in the 'X of N' total."""
        cache_dir = self._seed(tmp_path, 2)
        assert main(["cache", "--cache-dir", cache_dir,
                     "--prune-age", "1", "--dry-run"]) == 0
        assert "would prune 2 of 2 entries" in capsys.readouterr().out
        assert main(["cache", "--cache-dir", cache_dir,
                     "--prune-age", "1"]) == 0
        assert "pruned 2 of 2 entries" in capsys.readouterr().out


class TestTelemetryVerbs:
    def test_trace_parses_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.kinds == "drop,mark,deliver"
        assert args.out == "trace.jsonl"
        assert args.queue_interval_us is None

    def test_cell_json_stdout(self, capsys):
        import json

        rc = main(["cell", "--json", "--scale", "0.03125"])
        assert rc == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["schema"] == "repro.run_manifest/v1"
        assert manifest["config"]["queue"]["kind"] == "red"
        assert manifest["timings"]["events"] > 0

    def test_cell_json_to_file(self, tmp_path, capsys):
        import json

        path = tmp_path / "manifest.json"
        rc = main(["cell", "--json", str(path), "--scale", "0.03125"])
        assert rc == 0
        capsys.readouterr()
        with open(path) as fh:
            assert json.load(fh)["kind"] == "cell"

    def test_profile_text(self, capsys):
        rc = main(["profile", "--scale", "0.03125"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "events/sec" in out
        assert "heap high-water" in out
        assert "hottest callback categories" in out

    def test_profile_json(self, capsys):
        import json

        rc = main(["profile", "--scale", "0.03125", "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["events"] > 0
        assert report["heap_high_water"] > 0
        assert report["categories"]

    def test_trace_writes_jsonl(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.jsonl"
        rc = main(["trace", "--scale", "0.03125",
                   "--target-delay-us", "50", "--kinds", "drop,mark,deliver",
                   "--out", str(path)])
        assert rc == 0
        capsys.readouterr()
        kinds = set()
        with open(path) as fh:
            for line in fh:
                row = json.loads(line)
                assert {"t", "kind", "where"} <= set(row)
                kinds.add(row["kind"])
        assert kinds == {"drop", "mark", "deliver"}

    def test_trace_empty_kinds_rejected(self, capsys):
        rc = main(["trace", "--kinds", " , "])
        assert rc == 2
        assert "at least one event kind" in capsys.readouterr().err


class TestBenchBaselineErrors:
    """A broken baseline artifact is exit 3 — distinct from usage (2)
    and genuine regressions (1)."""

    def test_missing_baseline_exit_3(self, tmp_path, capsys):
        rc = main(["bench", "--quick",
                   "--baseline", str(tmp_path / "absent.json")])
        assert rc == 3
        assert "cannot read baseline" in capsys.readouterr().err

    def test_corrupt_baseline_exit_3(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{this is not json")
        rc = main(["bench", "--quick", "--baseline", str(bad)])
        assert rc == 3
        assert "not valid JSON" in capsys.readouterr().err

    def test_negative_tolerance_still_usage_error(self, capsys):
        rc = main(["bench", "--tolerance", "-0.5"])
        assert rc == 2
        assert "--tolerance" in capsys.readouterr().err


class TestCheckVerb:
    def test_check_parses_defaults(self):
        args = build_parser().parse_args(["check"])
        assert args.command == "check"
        assert not args.smoke
        assert args.fuzz is None and args.seed == 42
        assert args.checkers == "conservation,queues,tcp,engine"

    def test_unknown_checker_rejected(self, capsys):
        assert main(["check", "--checkers", "conservation,typo"]) == 2
        err = capsys.readouterr().err
        assert "unknown checker" in err and "typo" in err

    def test_empty_checkers_rejected(self, capsys):
        assert main(["check", "--checkers", " , "]) == 2
        assert "at least one checker" in capsys.readouterr().err

    def test_negative_fuzz_rejected(self, capsys):
        assert main(["check", "--fuzz", "-1"]) == 2
        assert "--fuzz" in capsys.readouterr().err

    def test_nonpositive_scale_rejected(self, capsys):
        assert main(["check", "--scale", "0"]) == 2
        assert "--scale" in capsys.readouterr().err

    def test_smoke_json_summary(self, tmp_path, capsys):
        import json

        path = tmp_path / "check.json"
        rc = main(["check", "--smoke", "--fuzz", "2", "--quiet",
                   "--json", str(path)])
        assert rc == 0
        capsys.readouterr()
        doc = json.loads(path.read_text())
        assert doc["ok"] is True
        assert doc["checkers"] == ["conservation", "queues", "tcp", "engine"]
        labels = {c["label"] for c in doc["cells"]}
        assert len(labels) == 5  # the CI subset
        assert all(c["ok"] and c["identical"] for c in doc["cells"])
        assert doc["fuzz"]["scenarios_run"] == 2
        assert doc["fuzz"]["ok"] is True


class TestFixedKVerb:
    def test_parses_defaults(self):
        args = build_parser().parse_args(["fixedk"])
        assert args.command == "fixedk"
        assert not args.smoke
        assert args.svg == "fixedk_regime"

    def test_parses_axes_and_sweep_options(self):
        args = build_parser().parse_args([
            "fixedk", "--k-values", "8,32", "--loads", "0.4,0.8",
            "--fanouts", "4", "--jobs", "2", "--cache-dir", "/tmp/c",
            "--resume", "--limit", "3", "--manifest", "m.json",
        ])
        assert args.k_values == "8,32"
        assert args.loads == "0.4,0.8"
        assert args.fanouts == "4"
        assert args.jobs == 2 and args.resume and args.limit == 3

    def test_jobs_must_be_positive(self, capsys):
        assert main(["fixedk", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_resume_requires_cache_dir(self, capsys):
        assert main(["fixedk", "--resume"]) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_bad_axis_values_rejected(self, capsys):
        assert main(["fixedk", "--k-values", "8,banana"]) == 2
        assert "--k-values" in capsys.readouterr().err

    def test_invalid_grid_cell_rejected(self, capsys):
        # fanout 99 exceeds the default fabric's remote-host pool.
        assert main(["fixedk", "--fanouts", "99"]) == 2
        assert "fanout" in capsys.readouterr().err
