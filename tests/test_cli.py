"""Tests for the CLI (fast paths only; sweeps are covered by benchmarks)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tables_parses(self):
        args = build_parser().parse_args(["tables"])
        assert args.command == "tables"

    def test_fig2_deep_flag(self):
        args = build_parser().parse_args(["fig2", "--deep", "--scale", "0.5"])
        assert args.deep and args.scale == 0.5

    def test_cell_options(self):
        args = build_parser().parse_args([
            "cell", "--queue", "marking", "--variant", "dctcp",
            "--target-delay-us", "120",
        ])
        assert args.queue == "marking"
        assert args.variant == "dctcp"
        assert args.target_delay_us == 120.0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])


class TestCommands:
    def test_tables_output(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "TABLE II" in out
        assert "ECN-Echo flag" in out

    def test_cell_droptail_tiny(self, capsys):
        rc = main(["cell", "--queue", "droptail", "--variant", "newreno",
                   "--scale", "0.03125"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "runtime" in out
        assert "tput/node" in out

    def test_cell_marking_tiny(self, capsys):
        rc = main(["cell", "--queue", "marking", "--variant", "dctcp",
                   "--target-delay-us", "100", "--scale", "0.03125"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "marking" in out


class TestTelemetryVerbs:
    def test_trace_parses_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.kinds == "drop,mark,deliver"
        assert args.out == "trace.jsonl"
        assert args.queue_interval_us is None

    def test_cell_json_stdout(self, capsys):
        import json

        rc = main(["cell", "--json", "--scale", "0.03125"])
        assert rc == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["schema"] == "repro.run_manifest/v1"
        assert manifest["config"]["queue"]["kind"] == "red"
        assert manifest["timings"]["events"] > 0

    def test_cell_json_to_file(self, tmp_path, capsys):
        import json

        path = tmp_path / "manifest.json"
        rc = main(["cell", "--json", str(path), "--scale", "0.03125"])
        assert rc == 0
        capsys.readouterr()
        with open(path) as fh:
            assert json.load(fh)["kind"] == "cell"

    def test_profile_text(self, capsys):
        rc = main(["profile", "--scale", "0.03125"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "events/sec" in out
        assert "heap high-water" in out
        assert "hottest callback categories" in out

    def test_profile_json(self, capsys):
        import json

        rc = main(["profile", "--scale", "0.03125", "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["events"] > 0
        assert report["heap_high_water"] > 0
        assert report["categories"]

    def test_trace_writes_jsonl(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.jsonl"
        rc = main(["trace", "--scale", "0.03125",
                   "--target-delay-us", "50", "--kinds", "drop,mark,deliver",
                   "--out", str(path)])
        assert rc == 0
        capsys.readouterr()
        kinds = set()
        with open(path) as fh:
            for line in fh:
                row = json.loads(line)
                assert {"t", "kind", "where"} <= set(row)
                kinds.add(row["kind"])
        assert kinds == {"drop", "mark", "deliver"}

    def test_trace_empty_kinds_rejected(self, capsys):
        rc = main(["trace", "--kinds", " , "])
        assert rc == 2
        assert "at least one event kind" in capsys.readouterr().err
