"""Tests for the CLI (fast paths only; sweeps are covered by benchmarks)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tables_parses(self):
        args = build_parser().parse_args(["tables"])
        assert args.command == "tables"

    def test_fig2_deep_flag(self):
        args = build_parser().parse_args(["fig2", "--deep", "--scale", "0.5"])
        assert args.deep and args.scale == 0.5

    def test_cell_options(self):
        args = build_parser().parse_args([
            "cell", "--queue", "marking", "--variant", "dctcp",
            "--target-delay-us", "120",
        ])
        assert args.queue == "marking"
        assert args.variant == "dctcp"
        assert args.target_delay_us == 120.0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])


class TestCommands:
    def test_tables_output(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "TABLE II" in out
        assert "ECN-Echo flag" in out

    def test_cell_droptail_tiny(self, capsys):
        rc = main(["cell", "--queue", "droptail", "--variant", "newreno",
                   "--scale", "0.03125"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "runtime" in out
        assert "tput/node" in out

    def test_cell_marking_tiny(self, capsys):
        rc = main(["cell", "--queue", "marking", "--variant", "dctcp",
                   "--target-delay-us", "100", "--scale", "0.03125"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "marking" in out
