"""Unit tests for the MapReduce building blocks (no network involved)."""

import numpy as np
import pytest

from repro.errors import ConfigError, MapReduceError
from repro.mapreduce import (
    Block,
    ClusterSpec,
    HdfsLayout,
    JobSpec,
    MapTask,
    NodeSpec,
    ReduceTask,
    SlotScheduler,
    TaskState,
    terasort_job,
)
from repro.units import mb


class TestNodeSpec:
    def test_defaults_valid(self):
        NodeSpec().validate()

    def test_rejects_zero_slots(self):
        with pytest.raises(ConfigError):
            NodeSpec(map_slots=0).validate()

    def test_rejects_zero_rate(self):
        with pytest.raises(ConfigError):
            NodeSpec(disk_read_bps=0).validate()


class TestClusterSpec:
    def test_totals(self):
        c = ClusterSpec(4, NodeSpec(map_slots=2, reduce_slots=3))
        assert c.total_map_slots == 8
        assert c.total_reduce_slots == 12

    def test_rejects_single_node(self):
        with pytest.raises(ConfigError):
            ClusterSpec(1).validate()


class TestHdfs:
    def rng(self):
        return np.random.default_rng(7)

    def test_block_count_and_sizes(self):
        h = HdfsLayout(8, self.rng())
        blocks = h.place_file(mb(10), mb(4))
        assert [b.size for b in blocks] == [mb(4), mb(4), mb(2)]

    def test_replication_distinct_nodes(self):
        h = HdfsLayout(8, self.rng(), replication=3)
        blocks = h.place_file(mb(100), mb(4))
        for b in blocks:
            assert len(b.replicas) == 3
            assert len(set(b.replicas)) == 3

    def test_replication_capped_by_nodes(self):
        h = HdfsLayout(2, self.rng(), replication=3)
        blocks = h.place_file(mb(4), mb(4))
        assert len(blocks[0].replicas) == 2

    def test_is_local_to(self):
        b = Block(0, 100, (1, 3))
        assert b.is_local_to(1)
        assert not b.is_local_to(2)

    def test_placement_deterministic_per_seed(self):
        a = HdfsLayout(8, np.random.default_rng(1)).place_file(mb(40), mb(4))
        b = HdfsLayout(8, np.random.default_rng(1)).place_file(mb(40), mb(4))
        assert [x.replicas for x in a] == [y.replicas for y in b]

    def test_blocks_on(self):
        h = HdfsLayout(4, self.rng(), replication=2)
        h.place_file(mb(16), mb(4))
        for node in range(4):
            for blk in h.blocks_on(node):
                assert blk.is_local_to(node)

    def test_block_lookup(self):
        h = HdfsLayout(4, self.rng())
        h.place_file(mb(8), mb(4))
        assert h.block(1).block_id == 1
        with pytest.raises(MapReduceError):
            h.block(99)

    def test_locality_fraction(self):
        h = HdfsLayout(4, self.rng(), replication=1)
        blocks = h.place_file(mb(8), mb(4))
        local_node = blocks[0].replicas[0]
        other = (local_node + 1) % 4
        frac = h.locality_fraction([(0, local_node), (1, other)])
        # second assignment local only if block1 happens to live on `other`
        expected = (1 + (1 if blocks[1].is_local_to(other) else 0)) / 2
        assert frac == expected

    def test_rejects_bad_sizes(self):
        h = HdfsLayout(4, self.rng())
        with pytest.raises(ConfigError):
            h.place_file(0, mb(4))


class TestJobSpec:
    def test_n_maps_rounds_up(self):
        j = JobSpec("j", input_bytes=mb(10), block_size=mb(4), n_reducers=2)
        assert j.n_maps == 3

    def test_terasort_selectivities(self):
        j = terasort_job(mb(64), n_reducers=8)
        assert j.map_selectivity == 1.0
        assert j.reduce_selectivity == 1.0

    def test_terasort_requires_reducers(self):
        with pytest.raises(ValueError):
            terasort_job(mb(64))

    def test_validation(self):
        with pytest.raises(ConfigError):
            JobSpec("j", input_bytes=0, block_size=1, n_reducers=1).validate()
        with pytest.raises(ConfigError):
            JobSpec("j", input_bytes=1, block_size=1, n_reducers=0).validate()
        with pytest.raises(ConfigError):
            JobSpec("j", input_bytes=1, block_size=1, n_reducers=1,
                    reduce_slowstart=1.5).validate()


class TestScheduler:
    def cluster(self, n=4, ms=2, rs=2):
        return ClusterSpec(n, NodeSpec(map_slots=ms, reduce_slots=rs))

    def maps_for(self, replicas_list):
        return [
            MapTask(i, Block(i, 100, tuple(reps)))
            for i, reps in enumerate(replicas_list)
        ]

    def test_prefers_data_local(self):
        sched = SlotScheduler(self.cluster())
        tasks = self.maps_for([(2,), (0,)])
        t = sched.assign_map(tasks)
        assert t is tasks[0]
        assert t.node == 2
        assert t.data_local

    def test_falls_back_to_any_node(self):
        sched = SlotScheduler(self.cluster(n=2, ms=1))
        tasks = self.maps_for([(0,), (0,)])
        t0 = sched.assign_map(tasks)
        assert t0.node == 0 and t0.data_local
        t1 = sched.assign_map(tasks)
        assert t1.node == 1 and not t1.data_local

    def test_slots_exhaust(self):
        sched = SlotScheduler(self.cluster(n=2, ms=1))
        tasks = self.maps_for([(0,), (1,), (0,)])
        assert sched.assign_map(tasks) is not None
        assert sched.assign_map(tasks) is not None
        assert sched.assign_map(tasks) is None  # all slots busy

    def test_release_reopens_slot(self):
        sched = SlotScheduler(self.cluster(n=2, ms=1))
        tasks = self.maps_for([(0,), (0,)])
        t = sched.assign_map(tasks)
        assert sched.assign_map(tasks) is not None  # remote on node 1
        assert sched.free_map_slots() == 0
        sched.release_map(t.node)
        assert sched.free_map_slots() == 1

    def test_over_release_rejected(self):
        sched = SlotScheduler(self.cluster())
        with pytest.raises(MapReduceError):
            sched.release_map(0)

    def test_reduce_round_robin(self):
        sched = SlotScheduler(self.cluster(n=4, rs=1))
        reduces = [ReduceTask(i) for i in range(4)]
        nodes = [sched.assign_reduce(reduces).node for _ in range(4)]
        assert sorted(nodes) == [0, 1, 2, 3]

    def test_reduce_none_when_full(self):
        sched = SlotScheduler(self.cluster(n=2, rs=1))
        reduces = [ReduceTask(i) for i in range(3)]
        sched.assign_reduce(reduces)
        sched.assign_reduce(reduces)
        assert sched.assign_reduce(reduces) is None

    def test_assigned_tasks_marked_running(self):
        sched = SlotScheduler(self.cluster())
        tasks = self.maps_for([(0,)])
        t = sched.assign_map(tasks)
        assert t.state is TaskState.RUNNING
        # no pending tasks left
        assert sched.assign_map(tasks) is None
