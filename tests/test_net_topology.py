"""Tests for topology builders, routing, switch forwarding, and ports."""

import pytest

from repro.core import DropTail
from repro.errors import ConfigError, RoutingError, TopologyError
from repro.net import Packet, build_dumbbell, build_leaf_spine, build_single_rack
from repro.net.packet import ECN_ECT0
from repro.sim import Simulator
from repro.units import gbps, us


def qf(n):
    return DropTail(100, name=n)


def send_and_run(sim, spec, src_i, dst_i, payload=1000):
    src, dst = spec.hosts[src_i], spec.hosts[dst_i]
    got = []
    dst.bind(7000, got.append)
    pkt = Packet(src=src.node_id, sport=1, dst=dst.node_id, dport=7000,
                 payload=payload, ecn=ECN_ECT0, created_at=sim.now)
    src.send(pkt)
    sim.run()
    return got


class TestSingleRack:
    def test_builds_expected_shape(self):
        sim = Simulator()
        spec = build_single_rack(sim, 8, qf)
        assert spec.n_hosts == 8
        assert len(spec.switches) == 1
        assert len(spec.hot_ports) == 8  # one ToR downlink per host

    @pytest.mark.parametrize("src,dst", [(0, 3), (3, 0), (1, 2)])
    def test_any_pair_connectivity(self, src, dst):
        sim = Simulator()
        spec = build_single_rack(sim, 4, qf)
        got = send_and_run(sim, spec, src, dst)
        assert len(got) == 1

    def test_delivery_latency_two_hops(self):
        sim = Simulator()
        spec = build_single_rack(sim, 2, qf, link_rate_bps=gbps(1), link_delay_s=us(20))
        got = []
        spec.hosts[1].add_delivery_hook(lambda p, t: got.append(t))
        send_and_run(sim, spec, 0, 1, payload=1460)
        # 2 serializations of 1500B @1Gbps (12us each) + 2 propagation (20us each)
        assert got[0] == pytest.approx(64e-6, rel=1e-6)

    def test_rejects_tiny_rack(self):
        with pytest.raises(ConfigError):
            build_single_rack(Simulator(), 1, qf)

    def test_hop_count(self):
        sim = Simulator()
        spec = build_single_rack(sim, 2, qf)
        got = send_and_run(sim, spec, 0, 1)
        assert got[0].hops == 2  # switch + destination host


class TestDumbbell:
    def test_cross_side_delivery(self):
        sim = Simulator()
        spec = build_dumbbell(sim, 2, 2, qf)
        got = send_and_run(sim, spec, 0, 2)  # left0 -> right0
        assert len(got) == 1
        assert got[0].hops == 3  # swL, swR, host

    def test_same_side_delivery(self):
        sim = Simulator()
        spec = build_dumbbell(sim, 2, 2, qf)
        got = send_and_run(sim, spec, 0, 1)
        assert len(got) == 1
        assert got[0].hops == 2  # swL only, then host

    def test_bottleneck_ports_exposed(self):
        spec = build_dumbbell(Simulator(), 2, 2, qf)
        assert len(spec.hot_ports) == 2

    def test_custom_bottleneck_rate(self):
        spec = build_dumbbell(Simulator(), 1, 1, qf, bottleneck_rate_bps=gbps(0.1))
        assert spec.hot_ports[0].rate_bps == pytest.approx(1e8)


class TestLeafSpine:
    def test_shape(self):
        spec = build_leaf_spine(Simulator(), 2, 2, 3, qf)
        assert spec.n_hosts == 6
        assert len(spec.switches) == 4

    def test_cross_rack_delivery(self):
        sim = Simulator()
        spec = build_leaf_spine(sim, 2, 2, 2, qf)
        got = send_and_run(sim, spec, 0, 3)  # h0_0 -> h1_1
        assert len(got) == 1
        assert got[0].hops == 4  # leaf, spine, leaf, host

    def test_intra_rack_stays_local(self):
        sim = Simulator()
        spec = build_leaf_spine(sim, 2, 2, 2, qf)
        got = send_and_run(sim, spec, 0, 1)
        assert got[0].hops == 2

    def test_ecmp_is_flow_stable(self):
        sim = Simulator()
        spec = build_leaf_spine(sim, 2, 4, 1, qf)
        leaf0 = spec.switches[0]
        pkts = [
            Packet(src=spec.hosts[0].node_id, sport=1234,
                   dst=spec.hosts[1].node_id, dport=80, payload=10)
            for _ in range(10)
        ]
        chosen = {leaf0.route_for(p).name for p in pkts}
        assert len(chosen) == 1  # same flow -> same spine

    def test_ecmp_spreads_distinct_flows(self):
        sim = Simulator()
        spec = build_leaf_spine(sim, 2, 4, 1, qf)
        leaf0 = spec.switches[0]
        chosen = {
            leaf0.route_for(
                Packet(src=spec.hosts[0].node_id, sport=1000 + i,
                       dst=spec.hosts[1].node_id, dport=80, payload=10)
            ).name
            for i in range(64)
        }
        assert len(chosen) > 1


class TestErrors:
    def test_switch_without_route_raises(self):
        from repro.net.switch import Switch

        sw = Switch(0, "sw")
        with pytest.raises(RoutingError):
            sw.route_for(Packet(src=1, sport=1, dst=99, dport=2, payload=1))

    def test_misrouted_packet_raises_at_host(self):
        sim = Simulator()
        spec = build_single_rack(sim, 2, qf)
        bad = Packet(src=0, sport=1, dst=spec.hosts[0].node_id, dport=2, payload=1)
        with pytest.raises(RoutingError):
            spec.hosts[1].receive(bad)

    def test_double_uplink_rejected(self):
        sim = Simulator()
        spec = build_single_rack(sim, 2, qf)
        with pytest.raises(TopologyError):
            spec.network.connect(
                spec.hosts[0], spec.switches[0], gbps(1), us(1), qf, qf
            )

    def test_port_requires_positive_rate(self):
        from repro.net.port import Port

        with pytest.raises(TopologyError):
            Port(Simulator(), "p", 0.0, 0.0, DropTail(10))


class TestPortTransmission:
    def test_packets_serialize_back_to_back(self):
        sim = Simulator()
        spec = build_single_rack(sim, 2, qf, link_rate_bps=gbps(1), link_delay_s=0.0)
        arrivals = []
        spec.hosts[1].add_delivery_hook(lambda p, t: arrivals.append(t))
        for i in range(3):
            spec.hosts[0].send(Packet(
                src=spec.hosts[0].node_id, sport=1,
                dst=spec.hosts[1].node_id, dport=7000, payload=1460,
            ))
        sim.run()
        assert len(arrivals) == 3
        # consecutive arrivals separated by one serialization time (12 us)
        gaps = [arrivals[i + 1] - arrivals[i] for i in range(2)]
        assert all(g == pytest.approx(12e-6, rel=1e-6) for g in gaps)

    def test_tx_counters(self):
        sim = Simulator()
        spec = build_single_rack(sim, 2, qf)
        spec.hosts[0].send(Packet(
            src=spec.hosts[0].node_id, sport=1,
            dst=spec.hosts[1].node_id, dport=7000, payload=100,
        ))
        sim.run()
        assert spec.hosts[0].uplink.tx_packets == 1
        assert spec.hosts[0].uplink.tx_bytes == 140


class TestEcmpSalt:
    """Per-switch hash salt: switches facing equal-sized ECMP sets must
    decorrelate (no hash polarization), while each switch stays
    flow-stable."""

    def flows(self, spec, n=128):
        return [
            Packet(src=spec.hosts[0].node_id, sport=2000 + i,
                   dst=spec.hosts[1].node_id, dport=80, payload=10)
            for i in range(n)
        ]

    def test_switches_decorrelate(self):
        # Identical 4-tuples hashed on switches with different node ids
        # must not all land on the same ECMP index — otherwise the leaf
        # tier's choice predetermines the spine tier's (polarization).
        from repro.net.switch import Switch, _flow_hash

        sim = Simulator()
        spec = build_leaf_spine(sim, 2, 4, 1, qf)
        salt_a = Switch(0, "a")._ecmp_salt
        salt_b = Switch(7, "b")._ecmp_salt
        idx_a = [_flow_hash(p, salt_a) % 4 for p in self.flows(spec)]
        idx_b = [_flow_hash(p, salt_b) % 4 for p in self.flows(spec)]
        assert idx_a != idx_b  # unsalted hashes would agree on every flow
        disagree = sum(1 for a, b in zip(idx_a, idx_b) if a != b)
        assert disagree > len(idx_a) // 2  # and decorrelate broadly

    def test_all_uplinks_carry_some_flow(self):
        sim = Simulator()
        spec = build_leaf_spine(sim, 2, 4, 1, qf)
        leaf0 = spec.switches[0]
        chosen = {leaf0.route_for(p).name for p in self.flows(spec)}
        assert len(chosen) == 4  # 128 flows over 4 ports: all used

    def test_route_candidates_in_port_id_order(self):
        # ECMP sets are ordered by creation-order port id, not by name:
        # renaming switches must not re-shuffle flow-to-path placement.
        sim = Simulator()
        spec = build_leaf_spine(sim, 2, 3, 1, qf)
        for sw in spec.switches:
            for ports in sw.fwd.values():
                ids = [p.port_id for p in ports]
                assert ids == sorted(ids)
                assert all(i >= 0 for i in ids)


class TestPerPacketEcmp:
    def test_round_robin_consumes_all_ports(self):
        sim = Simulator()
        spec = build_leaf_spine(sim, 2, 3, 1, qf, per_packet_ecmp=True)
        leaf0 = spec.switches[0]
        pkt = lambda: Packet(src=spec.hosts[0].node_id, sport=1,
                             dst=spec.hosts[1].node_id, dport=80, payload=10)
        names = [leaf0.route_for(pkt()).name for _ in range(6)]
        assert len(set(names)) == 3          # sprays over every spine
        assert names[:3] == names[3:]        # and cycles deterministically

    def test_spraying_reorders_on_asymmetric_planes(self):
        # One fast and one very slow spine plane: alternate packets take
        # alternate planes, so a later-sent packet overtakes an earlier
        # one — the reordering cost the fixedk study opts into.
        sim = Simulator()
        spec = build_leaf_spine(
            sim, 2, 2, 1, qf, per_packet_ecmp=True,
            uplink_rate_bps=(gbps(1), gbps(0.01)),
        )
        order = []
        spec.hosts[1].bind(7000, lambda p: order.append(p.seq))
        for i in range(4):
            spec.hosts[0].send(Packet(
                src=spec.hosts[0].node_id, sport=1,
                dst=spec.hosts[1].node_id, dport=7000,
                seq=i, payload=1000,
            ))
        sim.run()
        assert sorted(order) == [0, 1, 2, 3]
        assert order != [0, 1, 2, 3]  # flow-stable ECMP keeps order

    def test_flow_hash_mode_keeps_order_on_same_fabric(self):
        sim = Simulator()
        spec = build_leaf_spine(
            sim, 2, 2, 1, qf,
            uplink_rate_bps=(gbps(1), gbps(0.01)),
        )
        order = []
        spec.hosts[1].bind(7000, lambda p: order.append(p.seq))
        for i in range(4):
            spec.hosts[0].send(Packet(
                src=spec.hosts[0].node_id, sport=1,
                dst=spec.hosts[1].node_id, dport=7000,
                seq=i, payload=1000,
            ))
        sim.run()
        assert order == [0, 1, 2, 3]


class TestUplinkPorts:
    """Regression: hot_ports on a leaf-spine fabric must include the
    leaf<->spine uplinks — the oversubscribed bottleneck — not just the
    ToR downlinks, and uplink_ports exposes them separately."""

    def test_uplinks_exposed_and_subset_of_hot(self):
        spec = build_leaf_spine(Simulator(), 2, 2, 2, qf)
        assert len(spec.uplink_ports) == 2 * 2 * 2  # leaves x spines x dirs
        assert len(spec.hot_ports) == 4 + 8         # downlinks + uplinks
        hot = {id(p) for p in spec.hot_ports}
        assert all(id(p) in hot for p in spec.uplink_ports)

    def test_uplink_names_cover_both_directions(self):
        spec = build_leaf_spine(Simulator(), 2, 2, 1, qf)
        names = {p.name for p in spec.uplink_ports}
        assert "leaf0->spine0" in names
        assert "spine0->leaf0" in names

    def test_other_shapes_have_no_uplinks(self):
        assert build_single_rack(Simulator(), 2, qf).uplink_ports == []
        assert build_dumbbell(Simulator(), 1, 1, qf).uplink_ports == []

    def test_asymmetric_uplink_rates_applied(self):
        spec = build_leaf_spine(Simulator(), 2, 2, 1, qf,
                                uplink_rate_bps=(gbps(1), gbps(0.5)))
        rates = {p.name: p.rate_bps for p in spec.uplink_ports}
        assert rates["leaf0->spine0"] == pytest.approx(gbps(1))
        assert rates["leaf0->spine1"] == pytest.approx(gbps(0.5))

    def test_bad_uplink_rates_rejected(self):
        with pytest.raises(ConfigError):
            build_leaf_spine(Simulator(), 2, 2, 1, qf,
                             uplink_rate_bps=(gbps(1),))
        with pytest.raises(ConfigError):
            build_leaf_spine(Simulator(), 2, 2, 1, qf, uplink_rate_bps=0.0)
