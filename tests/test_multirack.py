"""Tests for the leaf-spine experiment extension."""

from dataclasses import replace

import pytest

from repro.errors import ConfigError
from repro.experiments import ExperimentConfig, QueueSetup
from repro.experiments.multirack import MultiRackConfig, run_multirack_cell
from repro.tcp import TcpVariant
from repro.units import gbps, mb, us


def tiny_base(queue=None, variant=TcpVariant.ECN):
    return replace(
        ExperimentConfig(
            queue=queue or QueueSetup(kind="droptail"),
            variant=variant,
            allow_timeout=True,
        ),
        data_bytes=mb(8), block_bytes=mb(1),
    )


def tiny_cell(**kw):
    return MultiRackConfig(base=tiny_base(kw.pop("queue", None),
                                          kw.pop("variant", TcpVariant.ECN)),
                           n_leaves=2, n_spines=2, hosts_per_leaf=2, **kw)


class TestConfig:
    def test_host_count(self):
        cfg = MultiRackConfig(base=tiny_base(), n_leaves=4, n_spines=2,
                              hosts_per_leaf=4)
        assert cfg.n_hosts == 16

    def test_uplink_rate_nonblocking(self):
        cfg = MultiRackConfig(base=tiny_base(), n_leaves=2, n_spines=2,
                              hosts_per_leaf=4, oversubscription=1.0)
        # 4 hosts x 1G split over 2 spines = 2G per uplink.
        assert cfg.uplink_rate_bps() == pytest.approx(gbps(2))

    def test_uplink_rate_oversubscribed(self):
        cfg = MultiRackConfig(base=tiny_base(), n_leaves=2, n_spines=2,
                              hosts_per_leaf=4, oversubscription=2.0)
        assert cfg.uplink_rate_bps() == pytest.approx(gbps(1))

    def test_validation(self):
        with pytest.raises(ConfigError):
            MultiRackConfig(base=tiny_base(), n_leaves=1).validate()
        with pytest.raises(ConfigError):
            MultiRackConfig(base=tiny_base(), oversubscription=0.5).validate()


class TestRuns:
    def test_droptail_completes(self):
        cell = run_multirack_cell(tiny_cell())
        assert cell.metrics.runtime > 0
        assert cell.metrics.extra["timed_out"] == 0.0

    def test_marking_lowest_latency(self):
        dt = run_multirack_cell(tiny_cell())
        mk = run_multirack_cell(tiny_cell(
            queue=QueueSetup(kind="marking", target_delay_s=us(100)),
            variant=TcpVariant.DCTCP,
        ))
        assert mk.metrics.mean_latency < dt.metrics.mean_latency

    def test_deterministic(self):
        a = run_multirack_cell(tiny_cell())
        b = run_multirack_cell(tiny_cell())
        assert a.metrics.runtime == b.metrics.runtime

    def test_oversubscription_slows_shuffle(self):
        fast = run_multirack_cell(tiny_cell(oversubscription=1.0))
        slow = run_multirack_cell(tiny_cell(oversubscription=4.0))
        assert slow.metrics.runtime > fast.metrics.runtime


class TestUplinkMonitoring:
    """Regression: multirack cells must observe the fabric uplinks, not
    just ToR downlinks, when queue monitoring is enabled."""

    def test_snapshots_cover_uplink_queues(self):
        cfg = tiny_cell()
        cfg = replace(cfg, base=replace(cfg.base, monitor_interval_s=0.001))
        cell = run_multirack_cell(cfg)
        assert cell.snapshots
        queues = {s.queue for s in cell.snapshots}
        assert any("spine" in q for q in queues)  # uplinks observed
        assert any(q.startswith("leaf") and "->h" in q for q in queues)

    def test_no_monitoring_without_interval(self):
        cell = run_multirack_cell(tiny_cell())
        assert cell.snapshots == []
