"""Tests for the trace bus."""

from repro.sim import Tracer


class TestSubscription:
    def test_subscriber_receives_records(self):
        tr = Tracer()
        got = []
        tr.subscribe("drop", got.append)
        tr.emit(1.0, "drop", "sw0.p1", "pkt")
        assert len(got) == 1
        assert got[0].time == 1.0
        assert got[0].kind == "drop"
        assert got[0].where == "sw0.p1"
        assert got[0].data == "pkt"

    def test_unrelated_kinds_not_delivered(self):
        tr = Tracer()
        got = []
        tr.subscribe("drop", got.append)
        tr.emit(1.0, "mark", "sw0", None)
        assert got == []

    def test_multiple_subscribers(self):
        tr = Tracer()
        a, b = [], []
        tr.subscribe("tx", a.append)
        tr.subscribe("tx", b.append)
        tr.emit(0.0, "tx", "p", None)
        assert len(a) == 1 and len(b) == 1

    def test_unsubscribe(self):
        tr = Tracer()
        got = []
        tr.subscribe("tx", got.append)
        tr.unsubscribe("tx", got.append)
        tr.emit(0.0, "tx", "p", None)
        assert got == []

    def test_wants(self):
        tr = Tracer()
        assert not tr.wants("drop")
        tr.subscribe("drop", lambda r: None)
        assert tr.wants("drop")


class TestRecordAll:
    def test_record_all_retains_everything(self):
        tr = Tracer(record_all=True)
        tr.emit(1.0, "a", "x", None)
        tr.emit(2.0, "b", "y", None)
        assert len(tr.records) == 2

    def test_of_kind_filters(self):
        tr = Tracer(record_all=True)
        tr.emit(1.0, "a", "x", None)
        tr.emit(2.0, "b", "y", None)
        tr.emit(3.0, "a", "z", None)
        assert [r.time for r in tr.of_kind("a")] == [1.0, 3.0]

    def test_no_record_without_record_all(self):
        tr = Tracer()
        tr.subscribe("a", lambda r: None)
        tr.emit(1.0, "a", "x", None)
        assert tr.records == []
