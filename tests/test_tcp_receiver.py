"""Protocol-level receiver tests: the listener driven by crafted segments."""

import pytest

from repro.net.packet import (
    ECN_CE,
    ECN_ECT0,
    ECN_NOT_ECT,
    FLAG_ACK,
    FLAG_CWR,
    FLAG_ECE,
    FLAG_SYN,
    Packet,
)
from repro.sim import Simulator
from repro.tcp import TcpConfig, TcpListener, TcpVariant

MSS = 1000
PORT = 5000


class StubHost:
    """Captures outbound packets from the listener."""

    def __init__(self, node_id=1):
        self.node_id = node_id
        self.name = "stub-rx"
        self.sent = []
        self._receivers = {}

    def send(self, pkt):
        self.sent.append(pkt)

    def bind(self, port, receiver):
        self._receivers[port] = receiver

    def unbind(self, port):
        self._receivers.pop(port, None)

    def deliver(self, pkt):
        self._receivers[pkt.dport](pkt)

    def acks(self):
        return [p for p in self.sent if p.is_pure_ack]


def make_listener(sim, variant=TcpVariant.ECN, **cfg_kw):
    cfg = TcpConfig(variant=variant, **cfg_kw)
    host = StubHost()
    listener = TcpListener(sim, host, PORT, cfg)
    return host, listener


def syn(ecn=True):
    flags = FLAG_SYN | ((FLAG_ECE | FLAG_CWR) if ecn else 0)
    return Packet(src=0, sport=7777, dst=1, dport=PORT, flags=flags,
                  ecn=ECN_NOT_ECT)


def data(seq, ce=False, cwr=False, payload=MSS):
    flags = FLAG_ACK | (FLAG_CWR if cwr else 0)
    return Packet(src=0, sport=7777, dst=1, dport=PORT, seq=seq,
                  payload=payload, flags=flags,
                  ecn=ECN_CE if ce else ECN_ECT0)


class TestSynHandling:
    def test_synack_with_ece_for_ecn_setup(self):
        sim = Simulator()
        host, _ = make_listener(sim)
        host.deliver(syn(ecn=True))
        reply = host.sent[0]
        assert reply.is_syn and (reply.flags & FLAG_ACK)
        assert reply.has_ece
        assert reply.ecn == ECN_NOT_ECT

    def test_plain_synack_for_non_ecn_peer(self):
        sim = Simulator()
        host, _ = make_listener(sim)
        host.deliver(syn(ecn=False))
        assert not host.sent[0].has_ece

    def test_retransmitted_syn_reanswered(self):
        sim = Simulator()
        host, listener = make_listener(sim)
        host.deliver(syn())
        host.deliver(syn())
        assert len([p for p in host.sent if p.is_syn]) == 2
        assert len(listener.flows) == 1

    def test_data_for_unknown_flow_ignored(self):
        sim = Simulator()
        host, listener = make_listener(sim)
        host.deliver(data(0))
        assert host.sent == []


class TestCumulativeAck:
    def establish(self, sim, **kw):
        host, listener = make_listener(sim, **kw)
        host.deliver(syn())
        host.sent.clear()
        return host, listener

    def state(self, listener):
        return next(iter(listener.flows.values()))

    def test_in_order_data_advances(self):
        sim = Simulator()
        host, listener = self.establish(sim, delack_segments=1)
        host.deliver(data(0))
        host.deliver(data(MSS))
        st = self.state(listener)
        assert st.rcv_nxt == 2 * MSS
        assert [p.ack for p in host.acks()] == [MSS, 2 * MSS]

    def test_out_of_order_triggers_dup_ack(self):
        sim = Simulator()
        host, listener = self.establish(sim)
        host.deliver(data(2 * MSS))  # hole at 0
        assert [p.ack for p in host.acks()] == [0]
        st = self.state(listener)
        assert st.ooo == [(2 * MSS, 3 * MSS)]

    def test_hole_fill_jumps_ack(self):
        sim = Simulator()
        host, listener = self.establish(sim, delack_segments=1)
        host.deliver(data(MSS))
        host.deliver(data(2 * MSS))
        host.sent.clear()
        host.deliver(data(0))  # fills the hole
        assert host.acks()[-1].ack == 3 * MSS

    def test_duplicate_data_reacked(self):
        sim = Simulator()
        host, listener = self.establish(sim, delack_segments=1)
        host.deliver(data(0))
        host.sent.clear()
        host.deliver(data(0))  # spurious retransmit
        assert host.acks()[-1].ack == MSS

    def test_acks_are_non_ect(self):
        sim = Simulator()
        host, listener = self.establish(sim, delack_segments=1)
        host.deliver(data(0, ce=True))
        assert all(p.ecn == ECN_NOT_ECT for p in host.acks())


class TestDelayedAcks:
    def test_ack_every_second_segment(self):
        sim = Simulator()
        host, listener = make_listener(sim, variant=TcpVariant.RENO,
                                       delack_segments=2,
                                       delack_timeout=0.5)
        host.deliver(syn(ecn=False))
        host.sent.clear()
        host.deliver(data(0))
        assert host.acks() == []  # held back
        host.deliver(data(MSS))
        assert [p.ack for p in host.acks()] == [2 * MSS]

    def test_delack_timer_flushes_singleton(self):
        sim = Simulator()
        host, listener = make_listener(sim, variant=TcpVariant.RENO,
                                       delack_segments=2,
                                       delack_timeout=0.01)
        host.deliver(syn(ecn=False))
        host.sent.clear()
        host.deliver(data(0))
        sim.run(until=0.05)
        assert [p.ack for p in host.acks()] == [MSS]


class TestClassicEcnEcho:
    def establish(self, sim):
        host, listener = make_listener(sim, variant=TcpVariant.ECN,
                                       delack_segments=1)
        host.deliver(syn())
        host.sent.clear()
        return host, listener

    def test_ce_latches_ece(self):
        sim = Simulator()
        host, _ = self.establish(sim)
        host.deliver(data(0, ce=True))
        host.deliver(data(MSS, ce=False))
        host.deliver(data(2 * MSS, ce=False))
        # ECE stays latched on every ACK until CWR arrives.
        assert all(p.has_ece for p in host.acks())

    def test_cwr_clears_latch(self):
        sim = Simulator()
        host, _ = self.establish(sim)
        host.deliver(data(0, ce=True))
        host.deliver(data(MSS, cwr=True))
        host.sent.clear()
        host.deliver(data(2 * MSS))
        assert not host.acks()[-1].has_ece

    def test_ce_with_cwr_relatches(self):
        sim = Simulator()
        host, _ = self.establish(sim)
        host.deliver(data(0, ce=True))
        host.sent.clear()
        host.deliver(data(MSS, ce=True, cwr=True))
        assert host.acks()[-1].has_ece


class TestDctcpPreciseEcho:
    def establish(self, sim, delack=2):
        host, listener = make_listener(sim, variant=TcpVariant.DCTCP,
                                       delack_segments=delack,
                                       delack_timeout=0.5)
        host.deliver(syn())
        host.sent.clear()
        return host, listener

    def test_state_change_forces_immediate_ack_with_old_state(self):
        """DCTCP's delayed-ACK state machine: on a CE flip, everything
        seen so far is ACKed immediately with the *previous* CE state."""
        sim = Simulator()
        host, _ = self.establish(sim)
        host.deliver(data(0, ce=False))      # held (delack=2)
        assert host.acks() == []
        host.deliver(data(MSS, ce=True))     # CE state change
        acks = host.acks()
        assert len(acks) == 1
        assert not acks[0].has_ece           # old state = no CE

    def test_steady_ce_stream_echoes_ece(self):
        sim = Simulator()
        host, _ = self.establish(sim, delack=1)
        host.deliver(data(0, ce=True))
        host.deliver(data(MSS, ce=True))
        host.deliver(data(2 * MSS, ce=True))
        acks = host.acks()
        # First ACK covers the flip (old state, no ECE); later ACKs echo CE.
        assert acks[-1].has_ece

    def test_ce_then_clean_flips_back(self):
        sim = Simulator()
        host, _ = self.establish(sim, delack=1)
        host.deliver(data(0, ce=True))
        host.deliver(data(MSS, ce=False))
        host.deliver(data(2 * MSS, ce=False))
        assert not host.acks()[-1].has_ece

    def test_no_echo_without_negotiation(self):
        sim = Simulator()
        host, listener = make_listener(sim, variant=TcpVariant.DCTCP,
                                       delack_segments=1)
        host.deliver(syn(ecn=False))  # ECN refused
        host.sent.clear()
        host.deliver(data(0, ce=True))
        assert not host.acks()[-1].has_ece


class TestListenerLifecycle:
    def test_close_cancels_delack_timers(self):
        sim = Simulator()
        host, listener = make_listener(sim, delack_segments=4,
                                       delack_timeout=0.01)
        host.deliver(syn())
        host.deliver(data(0))
        listener.close()
        host.sent.clear()
        sim.run(until=0.1)
        assert host.sent == []  # no stray delayed ACK after close
