"""Tests for the CoDel AQM extension."""

import pytest

from repro.core import CodelParams, CodelQueue, DropTail, ProtectionMode
from repro.errors import ConfigError
from repro.net import build_single_rack
from repro.net.packet import ECN_ECT0, ECN_NOT_ECT, FLAG_ACK, Packet
from repro.sim import Simulator
from repro.tcp import TcpConfig, TcpVariant
from repro.units import gbps, kb, ms, us
from repro.workloads import all_to_all


def data(ect=True, seq=0):
    return Packet(src=0, sport=1, dst=1, dport=2, seq=seq, payload=1460,
                  ecn=ECN_ECT0 if ect else ECN_NOT_ECT)


def ack():
    return Packet(src=1, sport=2, dst=0, dport=1, flags=FLAG_ACK)


class TestParams:
    def test_defaults_valid(self):
        CodelParams().validate()

    def test_rejects_nonpositive_times(self):
        with pytest.raises(ConfigError):
            CodelParams(target_s=0).validate()
        with pytest.raises(ConfigError):
            CodelParams(interval_s=0).validate()

    def test_rejects_target_above_interval(self):
        with pytest.raises(ConfigError):
            CodelParams(target_s=0.1, interval_s=0.01).validate()


class TestNoStandingQueue:
    def test_fast_queue_passes_untouched(self):
        """Sojourn below target: no marks, no drops."""
        q = CodelQueue(100, CodelParams(target_s=ms(1), interval_s=ms(10)))
        t = 0.0
        for i in range(50):
            q.enqueue(data(seq=i), t)
            pkt = q.dequeue(t + 1e-5)  # 10 us sojourn
            t += 1e-4
            assert pkt is not None
            assert not pkt.is_ce
        assert q.stats.drops_early == 0
        assert q.stats.marks == 0

    def test_brief_excursion_tolerated(self):
        """Sojourn above target for less than one interval: no action."""
        q = CodelQueue(100, CodelParams(target_s=ms(1), interval_s=ms(100)))
        q.enqueue(data(0), 0.0)
        q.enqueue(data(1), 0.0)
        # 2 ms sojourn but only one observation -> arms first_above_time,
        # takes no action yet.
        assert q.dequeue(0.002) is not None
        assert q.stats.marks == 0


class TestStandingQueue:
    def fill_standing(self, q, n=30, enq_t=0.0):
        for i in range(n):
            q.enqueue(data(seq=i), enq_t)

    def test_persistent_sojourn_marks_ect(self):
        q = CodelQueue(100, CodelParams(target_s=ms(1), interval_s=ms(10)))
        self.fill_standing(q)
        # Dequeue over > interval with sojourn >> target.
        t = 0.005
        marked = 0
        for _ in range(25):
            pkt = q.dequeue(t)
            if pkt is not None and pkt.is_ce:
                marked += 1
            t += 0.005
        assert marked > 0
        assert q.stats.drops_early == 0  # all-ECT traffic is marked only

    def test_persistent_sojourn_drops_non_ect(self):
        q = CodelQueue(100, CodelParams(target_s=ms(1), interval_s=ms(10),
                                        ecn=False))
        self.fill_standing(q)
        t = 0.005
        for _ in range(25):
            q.dequeue(t)
            t += 0.005
        assert q.stats.drops_early > 0

    def test_acks_dropped_ect_marked(self):
        """The paper's pathology reproduced on CoDel: with ECN on, the
        dropping state marks ECT data but drops interleaved pure ACKs."""
        q = CodelQueue(200, CodelParams(target_s=ms(1), interval_s=ms(5)))
        for i in range(15):
            q.enqueue(data(seq=i), 0.0)
            q.enqueue(ack(), 0.0)
        t = 0.01
        for _ in range(40):
            q.dequeue(t)
            t += 0.004
        assert q.stats.marks > 0
        assert q.stats.ack_drops > 0
        assert q.stats.ect_drops == 0

    def test_protection_shields_acks(self):
        q = CodelQueue(200, CodelParams(target_s=ms(1), interval_s=ms(5),
                                        protection=ProtectionMode.ACK_SYN))
        for i in range(15):
            q.enqueue(data(seq=i), 0.0)
            q.enqueue(ack(), 0.0)
        t = 0.01
        for _ in range(40):
            q.dequeue(t)
            t += 0.004
        assert q.stats.ack_drops == 0
        assert q.stats.protected > 0

    def test_exits_dropping_state_when_queue_drains(self):
        q = CodelQueue(100, CodelParams(target_s=ms(1), interval_s=ms(5),
                                        ecn=False))
        self.fill_standing(q, n=10)
        t = 0.01
        while q.dequeue(t) is not None or len(q):
            t += 0.004
            if t > 1.0:
                break
        assert len(q) == 0
        # After drain, fresh fast traffic passes untouched.
        drops_before = q.stats.drops_early
        q.enqueue(data(), t)
        pkt = q.dequeue(t + 1e-5)
        assert pkt is not None
        assert q.stats.drops_early == drops_before


class TestAccounting:
    def test_conservation_with_codel_drops(self):
        q = CodelQueue(100, CodelParams(target_s=ms(1), interval_s=ms(5),
                                        ecn=False))
        for i in range(30):
            q.enqueue(data(seq=i), 0.0)
        t = 0.01
        delivered = 0
        while True:
            pkt = q.dequeue(t)
            t += 0.004
            if pkt is None:
                break
            delivered += 1
        s = q.stats
        assert s.arrivals == 30
        assert s.departures == delivered
        assert s.arrivals == s.departures + s.drops + len(q)

    def test_tail_drop_still_applies(self):
        q = CodelQueue(3, CodelParams())
        for i in range(3):
            assert q.enqueue(data(seq=i), 0.0)
        assert not q.enqueue(data(), 0.0)
        assert q.stats.drops_tail == 1


class TestEndToEnd:
    def test_all_to_all_over_codel(self):
        """CoDel keeps the fabric stable end to end with ECN flows."""
        sim = Simulator()
        params = CodelParams(target_s=us(200), interval_s=ms(2))
        spec = build_single_rack(
            sim, 4, lambda nm: CodelQueue(200, params, name=nm),
            link_rate_bps=gbps(1), link_delay_s=us(20),
        )
        done = []
        all_to_all(sim, spec.hosts, kb(200), TcpConfig(variant=TcpVariant.ECN),
                   on_done=lambda r: done.append(r))
        sim.run(until=60.0)
        assert len(done) == 12
        assert all(not r.failed for r in done)
        st = spec.network.aggregate_switch_stats()
        assert st.marks > 0
