"""Property-based tests on the kernel, collectors and models."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis import red_stationary_drop_probability
from repro.net.packet import Packet
from repro.sim import Simulator
from repro.stats import LatencyCollector, jain_index, summarize


class TestEngineProperties:
    @given(
        delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=200),
        cancel_mask=st.lists(st.booleans(), min_size=1, max_size=200),
    )
    @settings(max_examples=100, deadline=None)
    def test_events_fire_in_nondecreasing_time_order(self, delays, cancel_mask):
        sim = Simulator()
        fired = []
        handles = []
        for d in delays:
            handles.append(sim.schedule(d, lambda: fired.append(sim.now)))
        for h, cancel in zip(handles, cancel_mask):
            if cancel:
                h.cancel()
        sim.run()
        assert fired == sorted(fired)
        expected = sum(
            1 for h, c in zip(handles, cancel_mask + [False] * len(handles))
            if not h.cancelled
        )
        assert len(fired) == sum(1 for h in handles if not h.cancelled)

    @given(delays=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_clock_never_goes_backwards(self, delays):
        sim = Simulator()
        observed = []

        def observe():
            observed.append(sim.now)

        for d in delays:
            sim.schedule(d, observe)
        sim.run()
        assert all(b >= a for a, b in zip(observed, observed[1:]))


class TestLatencyCollectorProperties:
    @given(lats=st.lists(st.floats(1e-6, 1.0), min_size=1, max_size=500))
    @settings(max_examples=50, deadline=None)
    def test_mean_exact_and_percentiles_ordered(self, lats):
        c = LatencyCollector()
        pkt = Packet(src=0, sport=1, dst=1, dport=2, payload=10)
        for lat in lats:
            pkt.created_at = 0.0
            c.hook(pkt, lat)
        assert c.count == len(lats)
        assert c.mean == sum(lats) / len(lats)
        p50, p95, p99 = c.percentile(50), c.percentile(95), c.percentile(99)
        assert p50 <= p95 * 1.0001
        assert p95 <= p99 * 1.0001
        assert p99 <= c.max_latency * 1.1 + 1e-12

    @given(lats=st.lists(st.floats(1e-5, 0.1), min_size=50, max_size=500))
    @settings(max_examples=30, deadline=None)
    def test_percentile_within_bin_error(self, lats):
        c = LatencyCollector()
        pkt = Packet(src=0, sport=1, dst=1, dport=2, payload=10)
        for lat in lats:
            pkt.created_at = 0.0
            c.hook(pkt, lat)
        exact = float(np.percentile(lats, 90))
        approx = c.percentile(90)
        # log-bin resolution over [1e-7, 10] with 400 bins is ~4.7%/bin;
        # allow a couple of bins of slack.
        assert 0.8 * exact <= approx <= 1.25 * exact


class TestStatProperties:
    @given(vals=st.lists(st.floats(0.001, 1e6), min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_jain_index_bounds(self, vals):
        j = jain_index(vals)
        assert 1.0 / len(vals) - 1e-9 <= j <= 1.0 + 1e-9

    @given(vals=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_summary_orderings(self, vals):
        s = summarize(vals)
        assert s.minimum <= s.p50 <= s.p95 <= s.p99 <= s.maximum
        # The mean can land one ULP outside [min, max] for near-identical
        # inputs; allow relative float slack.
        slack = 1e-9 * max(abs(s.minimum), abs(s.maximum)) + 1e-300
        assert s.minimum - slack <= s.mean <= s.maximum + slack


class TestRedModelProperties:
    @given(
        avg=st.floats(0, 200),
        min_th=st.floats(1, 50),
        span=st.floats(0, 100),
        max_p=st.floats(0.01, 1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_probability_bounds_and_monotonicity(self, avg, min_th, span, max_p):
        max_th = min_th + span
        p = red_stationary_drop_probability(avg, min_th, max_th, max_p)
        assert 0.0 <= p <= max_p
        # monotone in avg
        p_hi = red_stationary_drop_probability(avg + 1.0, min_th, max_th, max_p)
        assert p_hi >= p - 1e-12
