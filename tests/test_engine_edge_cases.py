"""Edge cases of the MapReduce engine: degenerate jobs and tiny clusters."""

import numpy as np
import pytest

from repro.core import DropTail
from repro.errors import MapReduceError
from repro.mapreduce import (
    ClusterSpec,
    JobSpec,
    MapReduceEngine,
    NodeSpec,
)
from repro.net import build_single_rack
from repro.sim import Simulator
from repro.tcp import TcpConfig
from repro.units import gbps, kb, mb, us


def run_spec(job, n=4, node=None, seed=42):
    sim = Simulator()
    spec = build_single_rack(sim, n, lambda nm: DropTail(200, name=nm),
                             link_rate_bps=gbps(1), link_delay_s=us(20))
    eng = MapReduceEngine(
        sim, spec, ClusterSpec(n, node or NodeSpec()), job,
        TcpConfig(), np.random.default_rng(seed),
    )
    eng.submit()
    sim.run(until=300.0)
    return eng


class TestDegenerateJobs:
    def test_zero_map_selectivity_no_shuffle(self):
        """A pure-filter job: nothing crosses the network in the shuffle."""
        job = JobSpec("filter", input_bytes=mb(4), block_size=mb(1),
                      n_reducers=4, map_selectivity=0.0).validate()
        eng = run_spec(job)
        assert eng.result is not None
        assert eng.result.bytes_shuffled == 0

    def test_single_block_job(self):
        job = JobSpec("tiny", input_bytes=kb(512), block_size=mb(4),
                      n_reducers=2).validate()
        eng = run_spec(job)
        assert len(eng.maps) == 1
        assert eng.result is not None

    def test_single_reducer(self):
        job = JobSpec("one-reducer", input_bytes=mb(4), block_size=mb(1),
                      n_reducers=1).validate()
        eng = run_spec(job)
        assert eng.result is not None
        assert eng.reduces[0].fetched_bytes == eng.result.bytes_shuffled

    def test_more_reducers_than_slots_runs_in_waves(self):
        job = JobSpec("waves", input_bytes=mb(4), block_size=mb(1),
                      n_reducers=20).validate()
        eng = run_spec(job, n=2, node=NodeSpec(map_slots=1, reduce_slots=1))
        assert eng.result is not None
        starts = sorted(r.start_time for r in eng.reduces)
        assert starts[-1] > starts[0]  # later waves started strictly later

    def test_output_smaller_than_reducer_count(self):
        """Map output below n_reducers yields zero-byte partitions, which
        must complete instantly rather than wedge the fetchers."""
        job = JobSpec("sparse", input_bytes=kb(40), block_size=kb(10),
                      n_reducers=16, map_selectivity=0.001).validate()
        eng = run_spec(job, n=4)
        assert eng.result is not None

    def test_double_submit_rejected(self):
        job = JobSpec("j", input_bytes=mb(1), block_size=mb(1),
                      n_reducers=1).validate()
        sim = Simulator()
        spec = build_single_rack(sim, 2, lambda nm: DropTail(100, name=nm))
        eng = MapReduceEngine(sim, spec, ClusterSpec(2, NodeSpec()), job,
                              TcpConfig(), np.random.default_rng(0))
        eng.submit()
        with pytest.raises(MapReduceError):
            eng.submit()


class TestResourceSensitivity:
    def test_slow_disks_dominate_runtime(self):
        job = JobSpec("io-bound", input_bytes=mb(8), block_size=mb(1),
                      n_reducers=4).validate()
        fast = run_spec(job, node=NodeSpec())
        slow = run_spec(job, node=NodeSpec(disk_read_bps=20e6,
                                           disk_write_bps=20e6))
        assert slow.result.runtime > 2 * fast.result.runtime

    def test_more_slots_speed_up_map_phase(self):
        job = JobSpec("map-heavy", input_bytes=mb(16), block_size=mb(1),
                      n_reducers=2, map_selectivity=0.01).validate()
        narrow = run_spec(job, node=NodeSpec(map_slots=1))
        wide = run_spec(job, node=NodeSpec(map_slots=4))
        assert wide.result.map_phase_duration < narrow.result.map_phase_duration

    def test_replication_one_still_schedulable(self):
        sim = Simulator()
        spec = build_single_rack(sim, 4, lambda nm: DropTail(200, name=nm))
        job = JobSpec("r1", input_bytes=mb(4), block_size=mb(1),
                      n_reducers=4).validate()
        eng = MapReduceEngine(sim, spec, ClusterSpec(4, NodeSpec()), job,
                              TcpConfig(), np.random.default_rng(1),
                              replication=1)
        eng.submit()
        sim.run(until=120.0)
        assert eng.result is not None
