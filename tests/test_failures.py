"""Tests for link failure injection and TCP's recovery from outages."""

import pytest

from repro.core import DropTail
from repro.errors import ConfigError
from repro.net import LinkFlapper, Packet, build_single_rack
from repro.sim import Simulator
from repro.tcp import TcpConfig, TcpListener, TcpVariant, start_bulk_flow
from repro.units import gbps, kb, mb, us


def rack(sim, n=4):
    return build_single_rack(sim, n, lambda nm: DropTail(200, name=nm),
                             link_rate_bps=gbps(1), link_delay_s=us(20))


class TestPortState:
    def test_down_port_stops_delivering(self):
        sim = Simulator()
        spec = rack(sim)
        got = []
        spec.hosts[1].bind(7000, got.append)
        spec.hosts[0].uplink.set_down()
        spec.hosts[0].send(Packet(src=spec.hosts[0].node_id, sport=1,
                                  dst=spec.hosts[1].node_id, dport=7000,
                                  payload=100))
        sim.run(until=1.0)
        assert got == []
        # Packet is parked in the queue, not lost.
        assert len(spec.hosts[0].uplink.qdisc) == 1

    def test_up_resumes_draining(self):
        sim = Simulator()
        spec = rack(sim)
        got = []
        spec.hosts[1].bind(7000, got.append)
        port = spec.hosts[0].uplink
        port.set_down()
        spec.hosts[0].send(Packet(src=spec.hosts[0].node_id, sport=1,
                                  dst=spec.hosts[1].node_id, dport=7000,
                                  payload=100))
        sim.schedule(0.5, port.set_up)
        sim.run(until=1.0)
        assert len(got) == 1

    def test_in_flight_frame_lost_on_failure(self):
        """A frame being serialized when the link fails never arrives."""
        sim = Simulator()
        spec = rack(sim)
        got = []
        spec.hosts[1].bind(7000, got.append)
        port = spec.hosts[0].uplink
        spec.hosts[0].send(Packet(src=spec.hosts[0].node_id, sport=1,
                                  dst=spec.hosts[1].node_id, dport=7000,
                                  payload=1460))
        # Serialization takes 12 us; fail at 5 us, mid-frame.
        sim.schedule(5e-6, port.set_down)
        sim.run(until=1.0)
        assert got == []
        assert port.failed_tx_packets == 1

    def test_set_up_idempotent(self):
        sim = Simulator()
        spec = rack(sim)
        port = spec.hosts[0].uplink
        port.set_up()  # already up: no-op
        port.set_down()
        port.set_down()
        port.set_up()
        port.set_up()
        assert port.up


class TestLinkFlapper:
    def test_validates_windows(self):
        sim = Simulator()
        spec = rack(sim)
        port = spec.hosts[0].uplink
        with pytest.raises(ConfigError):
            LinkFlapper(sim, [port], [(1.0, 1.0)])
        with pytest.raises(ConfigError):
            LinkFlapper(sim, [port], [(1.0, 2.0), (1.5, 3.0)])
        with pytest.raises(ConfigError):
            LinkFlapper(sim, [], [(1.0, 2.0)])

    def test_flap_counts(self):
        sim = Simulator()
        spec = rack(sim)
        flapper = LinkFlapper(sim, [spec.hosts[0].uplink],
                              [(0.1, 0.2), (0.3, 0.4)])
        sim.run(until=1.0)
        assert flapper.downs == 2
        assert flapper.ups == 2
        assert spec.hosts[0].uplink.up


class TestTcpRidesOutOutage:
    def test_flow_survives_uplink_flap(self):
        sim = Simulator()
        spec = rack(sim)
        cfg = TcpConfig(variant=TcpVariant.RENO)
        TcpListener(sim, spec.hosts[1], 5000, cfg)
        results = []
        start_bulk_flow(sim, spec.hosts[0], spec.hosts[1], 5000, mb(2), cfg,
                        on_done=lambda r: results.append(r))
        # Pull the sender's uplink for 50 ms in the middle of the transfer.
        LinkFlapper(sim, [spec.hosts[0].uplink], [(0.004, 0.054)])
        sim.run(until=60.0)
        assert len(results) == 1
        r = results[0]
        assert not r.failed
        assert r.rtos >= 1          # the outage forced at least one timeout
        assert r.fct > 0.05         # and the flow paid for it

    def test_flow_survives_reverse_path_flap(self):
        """Failing the ACK path only: data is delivered but unACKed."""
        sim = Simulator()
        spec = rack(sim)
        cfg = TcpConfig(variant=TcpVariant.RENO)
        TcpListener(sim, spec.hosts[1], 5000, cfg)
        results = []
        start_bulk_flow(sim, spec.hosts[0], spec.hosts[1], 5000, mb(1), cfg,
                        on_done=lambda r: results.append(r))
        LinkFlapper(sim, [spec.hosts[1].uplink], [(0.002, 0.03)])
        sim.run(until=60.0)
        assert len(results) == 1
        assert not results[0].failed

    def test_permanent_outage_fails_flow(self):
        sim = Simulator()
        spec = rack(sim)
        cfg = TcpConfig(variant=TcpVariant.RENO, max_retries=3)
        TcpListener(sim, spec.hosts[1], 5000, cfg)
        results = []
        start_bulk_flow(sim, spec.hosts[0], spec.hosts[1], 5000, kb(100), cfg,
                        on_done=lambda r: results.append(r))
        sim.schedule(0.0001, spec.hosts[0].uplink.set_down)
        sim.run(until=120.0)
        assert len(results) == 1
        assert results[0].failed
