"""Tests for the mixed-cluster coexistence experiment layer
(MixConfig / run_mix_cell / mix_grid) and its CLI verb."""

import dataclasses
import json

import pytest

from repro.errors import ConfigError
from repro.experiments import (
    MixConfig,
    QueueSetup,
    mix_grid,
    render_mix_table,
    run_cell,
    run_cells,
)
from repro.experiments.cache import ResultCache
from repro.experiments.mix import run_mix_cell
from repro.tcp import TcpVariant
from repro.units import mb, us


def tiny_config(**kw):
    kw.setdefault("queue", QueueSetup(kind="red", target_delay_s=us(200)))
    kw.setdefault("n_hosts", 8)
    kw.setdefault("data_bytes", mb(4))
    kw.setdefault("n_reducers", 4)
    kw.setdefault("rpc_fanout", 4)
    kw.setdefault("rpc_rate_qps", 150.0)
    kw.setdefault("bg_rate_fps", 30.0)
    kw.setdefault("seed", 17)
    return MixConfig(**kw)


def strip_wallclock(manifest):
    m = json.loads(json.dumps(manifest))
    m.pop("timings", None)
    m.pop("git", None)
    m.pop("version", None)
    return m


class TestMixCell:
    def test_manifest_workload_buckets(self):
        cell = run_mix_cell(tiny_config())
        wl = cell.manifest["workloads"]
        assert set(wl) == {"shuffle", "rpc", "background"}
        rpc = wl["rpc"]
        assert rpc["kind"] == "partition-aggregate"
        assert rpc["queries_completed"] > 0
        assert 0.0 <= rpc["deadline_miss_rate"] <= 1.0
        for key in ("p50", "p95", "p99"):
            assert rpc["qct_s"][key] >= 0.0
        bg = wl["background"]
        assert bg["kind"] == "open-loop"
        assert set(bg["size_bins"]) == {"short", "long"}
        assert wl["shuffle"]["kind"] == "shuffle"
        assert wl["shuffle"]["runtime_s"] == cell.metrics.runtime
        # per-flow slowdown is observed/ideal: never below 1
        if bg["flows"] - bg["flows_failed"] > 0:
            assert bg["slowdown"]["minimum"] >= 1.0

    def test_manifest_is_json_serialisable(self):
        cell = run_mix_cell(tiny_config())
        json.dumps(cell.manifest)

    def test_back_to_back_runs_bit_identical(self):
        cfg = tiny_config()
        a, b = run_mix_cell(cfg), run_mix_cell(cfg)
        assert dataclasses.asdict(a.metrics) == dataclasses.asdict(b.metrics)
        assert strip_wallclock(a.manifest) == strip_wallclock(b.manifest)

    def test_armed_run_bit_identical(self):
        from repro.validate.smoke import build_suite

        cfg = tiny_config()
        plain = run_mix_cell(cfg)
        armed = run_mix_cell(cfg, checks=build_suite(cfg))
        assert armed.manifest["validation"]["ok"]
        assert dataclasses.asdict(plain.metrics) == dataclasses.asdict(
            armed.metrics)
        assert (plain.manifest["workloads"]
                == armed.manifest["workloads"])

    def test_seed_changes_results(self):
        a = run_mix_cell(tiny_config(seed=1))
        b = run_mix_cell(tiny_config(seed=2))
        assert a.manifest["workloads"] != b.manifest["workloads"]

    def test_run_cell_dispatches_mixconfig(self):
        cfg = tiny_config()
        cell = run_cell(cfg)
        assert "workloads" in cell.manifest
        assert cell.manifest["kind"] == "mix-cell"

    def test_rpc_extra_metrics(self):
        cell = run_mix_cell(tiny_config())
        extra = cell.metrics.extra
        assert "rpc_deadline_miss_rate" in extra
        assert extra["rpc_queries_completed"] > 0

    def test_validate_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            tiny_config(rpc_fanout=8).validate()  # 8 hosts -> max fanout 7
        with pytest.raises(ConfigError):
            tiny_config(bg_sizes="nope").validate()
        with pytest.raises(ConfigError):
            tiny_config(rpc_rate_qps=0).validate()

    def test_scaled(self):
        cfg = tiny_config().scaled(0.5)
        assert cfg.data_bytes == mb(4) // 2

    def test_label(self):
        assert tiny_config().label() == "mix/tcp-ecn/red-default@200us/shallow"


class TestMixGrid:
    def test_labels_unique_and_prefixed(self):
        cells = mix_grid()
        labels = [label for label, _ in cells]
        assert len(labels) == len(set(labels)) == 10
        assert all(label.startswith("mix/") for label in labels)
        variants = {cfg.variant for _, cfg in cells}
        assert variants == {TcpVariant.ECN, TcpVariant.DCTCP}

    def test_cache_round_trip_through_runner(self, tmp_path):
        todo = [(label, cfg.scaled(1 / 16))
                for label, cfg in mix_grid(seed=23)[:2]]
        cache = ResultCache(str(tmp_path))
        first = run_cells(todo, jobs=1, cache=cache)
        assert len(first.executed) == 2
        second = run_cells(todo, jobs=1, cache=cache, resume=True)
        assert len(second.cached) == 2 and not second.executed
        for label in dict(todo):
            assert (strip_wallclock(first.results[label].manifest)
                    == strip_wallclock(second.results[label].manifest))
            assert "workloads" in second.results[label].manifest

    def test_render_mix_table(self):
        todo = [(label, cfg.scaled(1 / 16))
                for label, cfg in mix_grid(seed=23)[:2]]
        report = run_cells(todo, jobs=1)
        text = render_mix_table(report.results)
        assert "rpc_miss" in text and "bg_p99_slow" in text
        for label, _ in todo:
            assert label in text


class TestMixCli:
    def test_mix_smoke_exits_zero(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        rc = main(["mix", "--smoke"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "plain identical" in out and "armed identical" in out
        payload = json.loads((tmp_path / "mix_smoke_manifest.json").read_text())
        assert set(payload["workloads"]) == {"shuffle", "rpc", "background"}
        assert payload["smoke"]["identical_plain_rerun"]
        assert payload["smoke"]["identical_armed_rerun"]
        assert payload["smoke"]["validation_ok"]

    def test_mix_grid_cli_with_cache(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "cache"
        manifest = tmp_path / "sweep.json"
        args = ["mix", "--scale", "0.0625", "--limit", "2",
                "--cache-dir", str(cache_dir), "--quiet",
                "--manifest", str(manifest)]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "2 executed" in out
        assert main(args + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "2 cached" in out
        payload = json.loads(manifest.read_text())
        assert len(payload["cells"]) == 2
