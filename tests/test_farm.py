"""Tests for the sweep farm: protocol, journal, store, workers, service.

The crash-safety tests are honest: a worker is SIGKILLed mid-cell, a
scheduler subprocess is ``kill -9``'d mid-sweep, and a journal gets a
torn final line — in every case the restarted farm must resume with
bit-identical results and only the in-flight cells re-executed.

AF_UNIX socket paths are length-limited (~100 bytes), so the service
fixtures put sockets in their own short ``tempfile.mkdtemp`` dirs
rather than under pytest's deeply nested ``tmp_path``.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from contextlib import contextmanager
from dataclasses import replace

import pytest

from repro.errors import FarmError
from repro.experiments.cache import ResultCache, config_cache_key
from repro.experiments.config import ExperimentConfig, QueueSetup
from repro.experiments.runner import run_cell
from repro.farm.client import FarmClient
from repro.farm.journal import JOURNAL_SCHEMA, Journal
from repro.farm.protocol import (
    config_from_dict,
    config_from_wire,
    config_to_wire,
    parse_lines,
)
from repro.farm.scheduler import FarmScheduler
from repro.farm.store import ArtifactStore
from repro.farm.worker import install_checkpoints, spawn_worker
from repro.sim.engine import Simulator
from repro.tcp.endpoint import TcpVariant
from repro.telemetry.profiler import ProgressFanout, ProgressReporter
from repro.units import mb, us


def tiny(queue: QueueSetup, **kw) -> ExperimentConfig:
    """A very fast cell: 4 hosts, 2 MB Terasort in 1 MB blocks."""
    return replace(
        ExperimentConfig(queue=queue, variant=TcpVariant.ECN),
        n_hosts=4, data_bytes=mb(2), block_bytes=mb(1), n_reducers=4, **kw
    )


def slow(**kw) -> ExperimentConfig:
    """A ~0.4s-wall cell, long enough to be killed/preempted mid-run."""
    return replace(tiny(QueueSetup(kind="droptail")),
                   data_bytes=mb(16), **kw)


@contextmanager
def short_dir():
    d = tempfile.mkdtemp(prefix="farm-t-")
    try:
        yield d
    finally:
        shutil.rmtree(d, ignore_errors=True)


@contextmanager
def farm(workers=1, checkpoint_s=0.005, farm_dir=None):
    """An in-process scheduler on a real socket with real workers."""
    with short_dir() as d:
        sched = FarmScheduler(farm_dir or d, workers=workers,
                              socket_path=os.path.join(d, "s.sock"),
                              checkpoint_s=checkpoint_s)
        thread = threading.Thread(target=sched.serve_forever, daemon=True)
        thread.start()
        client = FarmClient(sched.socket_path, client="test")
        _wait_ping(client)
        try:
            yield sched, client
        finally:
            sched.stop()
            thread.join(timeout=60)
            assert not thread.is_alive()


def _wait_ping(client, timeout_s=10.0):
    deadline = time.time() + timeout_s
    while True:
        try:
            return client.ping()
        except FarmError:
            if time.time() >= deadline:
                raise
            time.sleep(0.05)


def _wait(predicate, timeout_s=60.0, interval_s=0.02):
    deadline = time.time() + timeout_s
    while not predicate():
        if time.time() >= deadline:
            raise AssertionError("timed out waiting for condition")
        time.sleep(interval_s)


class TestProtocol:
    def test_wire_round_trip_preserves_cache_key(self):
        cfg = tiny(QueueSetup(kind="red", target_delay_s=us(100)))
        wire = json.loads(json.dumps(config_to_wire(cfg)))
        back = config_from_wire(wire)
        assert back == cfg
        assert config_cache_key(back) == config_cache_key(cfg)

    def test_all_config_kinds_round_trip(self):
        from repro.experiments.bulkcell import BulkConfig
        from repro.experiments.fixedk import FixedKConfig
        from repro.experiments.mix import MixConfig
        from repro.experiments.probe import StabilityProbeConfig

        configs = [
            MixConfig(queue=QueueSetup(kind="red", target_delay_s=us(200))),
            FixedKConfig(),
            StabilityProbeConfig(
                queue=QueueSetup(kind="marking", target_delay_s=us(200))),
            BulkConfig(),
        ]
        for cfg in configs:
            wire = json.loads(json.dumps(config_to_wire(cfg)))
            assert config_from_wire(wire) == cfg

    def test_unknown_kind_and_fields_rejected(self):
        cfg = tiny(QueueSetup(kind="droptail"))
        wire = config_to_wire(cfg)
        with pytest.raises(FarmError):
            config_from_dict("nope", wire["config"])
        with pytest.raises(FarmError):
            config_from_dict("cell", {**wire["config"], "bogus_field": 1})

    def test_invalid_config_rejected_with_farm_error(self):
        wire = config_to_wire(tiny(QueueSetup(kind="droptail")))
        bad = {**wire["config"], "n_hosts": -1}
        with pytest.raises(FarmError):
            config_from_dict("cell", bad)

    def test_parse_lines_keeps_partial_and_flags_garbage(self):
        buf = bytearray(b'{"a":1}\nnot json\n{"b":')
        messages, rest = parse_lines(buf)
        assert messages[0] == {"a": 1}
        assert "_malformed" in messages[1]
        assert bytes(rest) == b'{"b":'


class TestJournal:
    def test_append_replay_round_trip(self, tmp_path):
        j = Journal(str(tmp_path / "j.jsonl"))
        j.append({"ev": "job", "id": "job-1"})
        j.append({"ev": "done", "key": "k"})
        j.close()
        records, torn = Journal(j.path).replay()
        assert torn == 0
        assert [r["ev"] for r in records] == ["header", "job", "done"]
        assert records[0]["schema"] == JOURNAL_SCHEMA
        assert all("t" in r for r in records)

    def test_torn_final_line_is_tolerated(self, tmp_path):
        j = Journal(str(tmp_path / "j.jsonl"))
        j.append({"ev": "job", "id": "job-1"})
        j.close()
        with open(j.path, "a") as fh:
            fh.write('{"ev": "done", "key": "trunc')  # kill -9 mid-append
        records, torn = Journal(j.path).replay()
        assert torn == 1
        assert [r["ev"] for r in records] == ["header", "job"]

    def test_append_after_torn_tail_stays_resumable(self, tmp_path):
        """Regression: a resumed journal must trim the torn fragment.

        Appending straight after the partial bytes would fuse the next
        record onto the fragment — one malformed line that is no longer
        final, so the *second* restart's replay would refuse to resume.
        """
        j = Journal(str(tmp_path / "j.jsonl"))
        j.append({"ev": "job", "id": "job-1"})
        j.close()
        with open(j.path, "a") as fh:
            fh.write('{"ev": "done", "key": "trunc')  # kill -9 mid-append
        resumed = Journal(j.path)
        _records, torn = resumed.replay()
        assert torn == 1
        resumed.append({"ev": "done", "key": "k2"})  # post-resume append
        resumed.close()
        records, torn = Journal(j.path).replay()  # second restart
        assert torn == 0
        assert [r["ev"] for r in records] == ["header", "job", "done"]
        assert records[-1]["key"] == "k2"

    def test_torn_header_only_file_rebuilds_header(self, tmp_path):
        """A crash during the very first (header) append leaves a file
        with no complete line; reopening must start it over cleanly."""
        path = str(tmp_path / "j.jsonl")
        with open(path, "w") as fh:
            fh.write('{"ev": "head')
        j = Journal(path)
        j.append({"ev": "job", "id": "job-1"})
        j.close()
        records, torn = Journal(path).replay()
        assert torn == 0
        assert [r["ev"] for r in records] == ["header", "job"]

    def test_mid_file_corruption_refuses_to_resume(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w") as fh:
            fh.write('{"ev": "header"}\ngarbage\n{"ev": "done"}\n')
        with pytest.raises(FarmError):
            Journal(path).replay()

    def test_missing_file_is_empty(self, tmp_path):
        assert Journal(str(tmp_path / "absent.jsonl")).replay() == ([], 0)


class TestArtifactStore:
    def test_write_once_and_index(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "artifacts"))
        assert store.put_job("job-1", {"cells": []}) is not None
        assert store.put_job("job-1", {"cells": ["clobber"]}) is None
        assert store.read("job-1", "job.json") == {"cells": []}
        assert store.put_results("job-1", {"state": "done",
                                           "cells": {"a": {}}}) is not None
        # Re-completion after a resume appends nothing and keeps v1.
        assert store.put_results("job-1", {"state": "failed"}) is None
        with open(store.index_path) as fh:
            lines = [json.loads(line) for line in fh]
        assert len(lines) == 1 and lines[0]["id"] == "job-1"
        assert store.jobs() == ["job-1"]


class TestWorkerPreemption:
    def test_checkpoints_are_bit_invisible(self):
        cfg = tiny(QueueSetup(kind="red", target_delay_s=us(100)))
        plain = run_cell(cfg)
        prev = install_checkpoints(0.005)
        try:
            hooked = run_cell(cfg)
        finally:
            Simulator.on_create = prev
        assert hooked.metrics == plain.metrics
        assert (hooked.manifest["timings"]["events"]
                == plain.manifest["timings"]["events"])

    def test_sigusr1_preempts_at_a_checkpoint(self):
        proc, conn = spawn_worker(interval_s=0.001)
        try:
            assert conn.recv() == {"ev": "ready"}
            wire = config_to_wire(slow())
            conn.send({"op": "run", "key": "k1", "kind": wire["kind"],
                       "config": wire["config"]})
            time.sleep(0.1)  # let it get well into the event loop
            os.kill(proc.pid, signal.SIGUSR1)
            assert conn.poll(30)
            msg = conn.recv()
            assert msg == {"ev": "preempted", "key": "k1"}
            # The worker survives preemption and still runs cells.
            tiny_wire = config_to_wire(tiny(QueueSetup(kind="droptail")))
            conn.send({"op": "run", "key": "k2", **tiny_wire})
            assert conn.poll(60)
            done = conn.recv()
            assert done["ev"] == "done" and done["key"] == "k2"
        finally:
            proc.terminate()
            proc.join(timeout=5)

    def test_preempt_request_before_run_starts_is_not_lost(self):
        """Regression: the scheduler may SIGUSR1 the instant it marks a
        slot busy — before the worker enters the cell. That request must
        survive until the first checkpoint, not be reset on run entry.
        """
        import repro.farm.worker as worker_mod

        sent = []

        class Conn:
            def send(self, msg):
                sent.append(msg)

        prev = install_checkpoints(0.005)
        try:
            worker_mod._preempt_requested = True  # signal beat the run
            wire = config_to_wire(tiny(QueueSetup(kind="droptail")))
            worker_mod._run_request(Conn(), {"key": "k", **wire})
            flag_after = worker_mod._preempt_requested
        finally:
            Simulator.on_create = prev
            worker_mod._preempt_requested = False
        assert sent == [{"ev": "preempted", "key": "k"}]
        assert flag_after is False  # cleared with the terminal message

    def test_preempted_rerun_is_bit_identical(self):
        cfg = slow()
        local = run_cell(cfg)
        proc, conn = spawn_worker(interval_s=0.001)
        try:
            assert conn.recv() == {"ev": "ready"}
            wire = config_to_wire(cfg)
            conn.send({"op": "run", "key": "k", **wire})
            time.sleep(0.1)
            os.kill(proc.pid, signal.SIGUSR1)
            assert conn.poll(30)
            assert conn.recv()["ev"] == "preempted"
            conn.send({"op": "run", "key": "k", **wire})
            assert conn.poll(120)
            msg = conn.recv()
            assert msg["ev"] == "done"
            assert msg["entry"]["metrics"]["runtime"] == local.metrics.runtime
        finally:
            proc.terminate()
            proc.join(timeout=5)


class TestFarmService:
    def test_submit_status_results_round_trip(self):
        cfg_a = tiny(QueueSetup(kind="droptail"))
        cfg_b = tiny(QueueSetup(kind="red", target_delay_s=us(100)))
        local = {"a": run_cell(cfg_a), "b": run_cell(cfg_b)}
        with farm(workers=2) as (_sched, client):
            sub = client.submit([("a", cfg_a), ("b", cfg_b)])
            assert sub["id"] == "job-000001"
            final = client.wait(sub["id"], timeout=120)
            assert final["state"] == "done"
            status = client.status(sub["id"])
            assert status["labels"] == {"a": "executed", "b": "executed"}
            got = client.fetch(sub["id"])
            for label in ("a", "b"):
                assert got[label].metrics == local[label].metrics
                assert got[label].snapshots == local[label].snapshots

    def test_cross_client_dedup_shares_one_execution(self):
        # Slow enough (~0.4s) that it is still running when the second
        # client's identical submission arrives — dedup, not cache hit.
        shared = slow(seed=11)
        with farm(workers=1) as (sched, client):
            other = FarmClient(sched.socket_path, client="other")
            sub1 = client.submit([("mine", shared)])
            sub2 = other.submit([("theirs", shared)])
            client.wait(sub1["id"], timeout=120)
            other.wait(sub2["id"], timeout=120)
            outcomes = sorted([
                client.status(sub1["id"])["labels"]["mine"],
                other.status(sub2["id"])["labels"]["theirs"],
            ])
            assert outcomes == ["dedup", "executed"]
            assert client.stats()["cache"]["entries"] == 1
            # Both clients still fetch the full result.
            assert (client.fetch(sub1["id"])["mine"].metrics
                    == other.fetch(sub2["id"])["theirs"].metrics)

    def test_resubmission_is_cache_served(self):
        cfg = tiny(QueueSetup(kind="droptail"))
        with farm(workers=1) as (_sched, client):
            first = client.submit([("x", cfg)])
            client.wait(first["id"], timeout=120)
            again = client.submit([("x", cfg)])
            assert again["state"] == "done"
            assert again["cells"]["cached"] == 1

    def test_watch_streams_live_progress(self):
        cfg_a = tiny(QueueSetup(kind="droptail"))
        cfg_b = tiny(QueueSetup(kind="marking", target_delay_s=us(100)))
        with farm(workers=1) as (_sched, client):
            sub = client.submit([("a", cfg_a), ("b", cfg_b)])
            events = list(client.watch(sub["id"], timeout=120))
            kinds = [e["ev"] for e in events]
            assert kinds[0] == "watch" and kinds[-1] == "job_done"
            progress = [e for e in events if e["ev"] == "progress"]
            # Every cell completion streamed, counters strictly rising.
            assert [p["done"] for p in progress] == [1, 2]
            assert all(p["total"] == 2 for p in progress)
            assert {p["label"] for p in progress} == {"a", "b"}

    def test_priority_preempts_running_low_priority_cell(self):
        lows = [("low/%d" % i, slow(seed=100 + i)) for i in range(2)]
        high = tiny(QueueSetup(kind="red", target_delay_s=us(100)))
        with farm(workers=1) as (sched, client):
            sub_low = client.submit(lows, priority=0)
            _wait(lambda: client.stats()["busy"] == 1, timeout_s=30)
            sub_high = client.submit([("high", high)], priority=10)
            done_high = client.wait(sub_high["id"], timeout=120)
            assert done_high["state"] == "done"
            # The high-priority job finished while the low one still ran…
            low_status = client.status(sub_low["id"])
            assert low_status["cells"]["done"] < 2
            client.wait(sub_low["id"], timeout=240)
            # …because the in-flight low cell was preempted, not raced.
            assert client.stats()["preemptions"] >= 1
            # Preempted-and-rerun results stay bit-identical.
            got = client.fetch(sub_low["id"])
            for label, cfg in lows:
                assert got[label].metrics == run_cell(cfg).metrics

    def test_cancel_frees_the_queue(self):
        cells = [("c/%d" % i, slow(seed=200 + i)) for i in range(3)]
        with farm(workers=1) as (_sched, client):
            sub = client.submit(cells)
            _wait(lambda: client.stats()["busy"] == 1, timeout_s=30)
            resp = client.cancel(sub["id"])
            assert resp["state"] == "cancelled"
            # The farm goes fully idle: pending cells dropped, the
            # running one preempted and discarded.
            _wait(lambda: client.stats()["busy"] == 0, timeout_s=60)
            assert client.status(sub["id"])["state"] == "cancelled"

    def test_bad_requests_get_errors_not_crashes(self):
        with farm(workers=1) as (_sched, client):
            with pytest.raises(FarmError):
                client.status("job-nope")
            with pytest.raises(FarmError):
                client._call("submit", cells=[])
            with pytest.raises(FarmError):
                client._call("frobnicate")
            assert client.ping()["ok"] is True  # still alive


class TestCrashResume:
    def test_sigkilled_worker_is_replaced_and_cell_rerun(self):
        cfg = slow(seed=7)
        local = run_cell(cfg)
        with farm(workers=1) as (sched, client):
            sub = client.submit([("victim", cfg)])
            _wait(lambda: any(s.busy for s in sched._slots), timeout_s=30)
            os.kill(sched._slots[0].proc.pid, signal.SIGKILL)
            final = client.wait(sub["id"], timeout=240)
            assert final["state"] == "done"
            assert client.stats()["worker_crashes"] == 1
            got = client.fetch(sub["id"])["victim"]
            assert got.metrics == local.metrics

    def test_scheduler_kill9_resumes_from_journal(self):
        """The honest test: kill -9 a real `repro serve` mid-sweep."""
        cells = [("cell/%d" % i, slow(seed=300 + i)) for i in range(3)]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src"),
             env.get("PYTHONPATH", "")]).rstrip(os.pathsep)

        def start(d):
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve", "--farm-dir", d,
                 "--workers", "1", "--checkpoint-s", "0.005"],
                env=env, stderr=subprocess.DEVNULL)
            client = FarmClient(os.path.join(d, "farm.sock"))
            _wait_ping(client, timeout_s=30)
            return proc, client

        with short_dir() as d:
            proc, client = start(d)
            try:
                sub = client.submit(cells)
                job_id = sub["id"]
                # Let the first cell land in the cache, then murder the
                # scheduler while the second is in flight.
                _wait(lambda: client.status(job_id)["cells"]["done"] >= 1,
                      timeout_s=120)
                os.kill(proc.pid, signal.SIGKILL)
                proc.wait(timeout=30)

                cache = ResultCache(os.path.join(d, "cache"))
                done_before = set(cache.keys())
                assert done_before  # at least the first cell persisted
                mtimes = {k: os.path.getmtime(
                    os.path.join(cache.root, k + ".json"))
                    for k in done_before}

                proc, client = start(d)  # resume from journal + cache
                assert client.stats()["resumed_jobs"] == 1
                final = client.wait(job_id, timeout=300)
                assert final["state"] == "done"

                # Only in-flight cells re-executed: entries that were
                # already on disk were served, not rewritten.
                for key, mtime in mtimes.items():
                    assert os.path.getmtime(
                        os.path.join(cache.root, key + ".json")) == mtime

                # And the merged results are bit-identical to local runs.
                got = client.fetch(job_id)
                for label, cfg in cells:
                    assert got[label].metrics == run_cell(cfg).metrics
                client.shutdown()
                proc.wait(timeout=60)
                assert proc.returncode == 0
            finally:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=10)

    def test_resume_tolerates_torn_journal_tail(self):
        cfg = tiny(QueueSetup(kind="droptail"))
        with short_dir() as d:
            with farm(farm_dir=d, workers=1) as (_sched, client):
                sub = client.submit([("t", cfg)])
                client.wait(sub["id"], timeout=120)
            with open(os.path.join(d, "journal.jsonl"), "a") as fh:
                fh.write('{"ev": "job", "id": "job-000002", "ce')  # torn
            with farm(farm_dir=d, workers=1) as (sched, client):
                assert sched.resumed_truncated == 1
                assert client.stats()["resumed_jobs"] == 1
                # The intact history replayed: job-000001 is complete,
                # and new submissions do not collide with the torn id.
                assert client.status("job-000001")["state"] == "done"
                again = client.submit([("t2", cfg)])
                assert again["cells"]["cached"] == 1


class TestProgressFanout:
    def test_fanout_multiplexes(self):
        fan = ProgressFanout()
        a, b = [], []
        fan.subscribe(lambda d, t, label: a.append((d, t, label)))
        token = fan.subscribe(lambda d, t, label: b.append(label))
        fan(1, 2, "x")
        fan.unsubscribe(token)
        fan(2, 2, "y")
        assert a == [(1, 2, "x"), (2, 2, "y")]
        assert b == ["x"]

    def test_raising_subscriber_is_dropped_not_fatal(self):
        fan = ProgressFanout()
        ok = []

        def dead(d, t, label):
            raise BrokenPipeError("watcher went away")

        token = fan.subscribe(dead)
        fan.subscribe(lambda d, t, label: ok.append(label))
        fan(1, 2, "x")
        fan(2, 2, "y")
        assert ok == ["x", "y"]
        assert len(fan) == 1
        assert isinstance(fan.dropped[token], BrokenPipeError)

    def test_reporter_counts_dedup_separately(self, capsys):
        rep = ProgressReporter(stream=sys.stdout)
        rep(1, 3, "a")
        rep(2, 3, "b" + ProgressReporter.CACHED_SUFFIX)
        rep(3, 3, "c" + ProgressReporter.DEDUP_SUFFIX)
        assert rep.cached == 1 and rep.deduped == 1 and rep.done == 3
