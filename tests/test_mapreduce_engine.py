"""Integration tests: full MapReduce jobs over the simulated network."""

import numpy as np
import pytest

from repro.core import DropTail
from repro.errors import ConfigError
from repro.mapreduce import (
    ClusterSpec,
    MapReduceEngine,
    NodeSpec,
    TaskState,
    terasort_job,
)
from repro.net import build_single_rack
from repro.sim import Simulator
from repro.tcp import TcpConfig, TcpVariant
from repro.units import gbps, mb, us


def run_job(n=8, data=mb(16), block=mb(2), reducers=8, variant=TcpVariant.ECN,
            seed=42, qlimit=200, slowstart=0.05, parallelism=5):
    sim = Simulator()
    spec = build_single_rack(sim, n, lambda nm: DropTail(qlimit, name=nm),
                             link_rate_bps=gbps(1), link_delay_s=us(20))
    eng = MapReduceEngine(
        sim, spec, ClusterSpec(n, NodeSpec()),
        terasort_job(data, block_size=block, n_reducers=reducers,
                     reduce_slowstart=slowstart),
        TcpConfig(variant=variant), np.random.default_rng(seed),
        shuffle_parallelism=parallelism,
    )
    eng.submit()
    sim.run(until=300.0)
    return eng, sim


class TestJobCompletion:
    def test_job_finishes(self):
        eng, _ = run_job()
        assert eng.result is not None
        assert eng.result.runtime > 0

    def test_all_tasks_done(self):
        eng, _ = run_job()
        assert all(m.state is TaskState.DONE for m in eng.maps)
        assert all(r.state is TaskState.DONE for r in eng.reduces)

    def test_map_count_matches_blocks(self):
        eng, _ = run_job(data=mb(16), block=mb(2))
        assert len(eng.maps) == 8

    def test_shuffle_conservation(self):
        """Every map-output byte must arrive at exactly one reducer."""
        eng, _ = run_job(data=mb(16), block=mb(2), reducers=4)
        expected = sum(
            (m.output_bytes // 4) * 4 for m in eng.maps
        )
        assert eng.result.bytes_shuffled == expected

    def test_remote_bytes_less_than_total(self):
        eng, _ = run_job()
        assert 0 < eng.result.bytes_shuffled_remote <= eng.result.bytes_shuffled

    def test_phases_ordered(self):
        eng, _ = run_job()
        r = eng.result
        assert r.submit_time <= r.map_phase_end <= r.end_time
        for task in eng.reduces:
            assert task.start_time <= task.shuffle_done_time <= task.end_time

    def test_runtime_reasonable(self):
        """16 MB over 8 nodes at 1 Gbps must take well under a second."""
        eng, _ = run_job()
        assert 0.01 < eng.result.runtime < 2.0


class TestDeterminism:
    def test_same_seed_same_runtime(self):
        r1 = run_job(seed=123)[0].result
        r2 = run_job(seed=123)[0].result
        assert r1.runtime == r2.runtime
        assert r1.bytes_shuffled == r2.bytes_shuffled

    def test_different_seed_different_placement(self):
        e1 = run_job(seed=1)[0]
        e2 = run_job(seed=2)[0]
        p1 = [b.replicas for b in e1.hdfs.blocks]
        p2 = [b.replicas for b in e2.hdfs.blocks]
        assert p1 != p2


class TestLocality:
    def test_high_locality_with_replication(self):
        eng, _ = run_job()
        assert eng.result.locality_fraction > 0.5

    def test_locality_recorded_per_task(self):
        eng, _ = run_job()
        for m in eng.maps:
            if m.data_local:
                assert m.block.is_local_to(m.node)


class TestSlowstart:
    def test_late_reducers_with_full_slowstart(self):
        """slowstart=1.0: no reducer may start before the last map ends."""
        eng, _ = run_job(slowstart=1.0)
        last_map_end = max(m.end_time for m in eng.maps)
        first_reduce_start = min(r.start_time for r in eng.reduces)
        assert first_reduce_start >= last_map_end

    def test_early_reducers_with_zero_slowstart(self):
        eng, _ = run_job(slowstart=0.0, data=mb(32), block=mb(2))
        last_map_end = max(m.end_time for m in eng.maps)
        first_reduce_start = min(r.start_time for r in eng.reduces)
        assert first_reduce_start < last_map_end


class TestVariants:
    @pytest.mark.parametrize("variant", list(TcpVariant))
    def test_all_transports_complete(self, variant):
        eng, _ = run_job(variant=variant)
        assert eng.result is not None

    def test_reducer_waves(self):
        """More reducers than slots: reduce phase runs in waves."""
        eng, _ = run_job(n=4, reducers=12, data=mb(8))
        assert eng.result is not None
        nodes = [r.node for r in eng.reduces]
        assert len(set(nodes)) == 4

    def test_parallelism_one_still_completes(self):
        eng, _ = run_job(parallelism=1)
        assert eng.result is not None


class TestValidation:
    def test_cluster_topology_mismatch_rejected(self):
        sim = Simulator()
        spec = build_single_rack(sim, 4, lambda nm: DropTail(100, name=nm))
        with pytest.raises(ConfigError):
            MapReduceEngine(
                sim, spec, ClusterSpec(8, NodeSpec()),
                terasort_job(mb(8), n_reducers=2),
                TcpConfig(), np.random.default_rng(0),
            )

    def test_shuffle_flow_results_nonempty(self):
        eng, _ = run_job()
        flows = eng.shuffle_flow_results()
        assert flows
        assert all(not f.failed for f in flows)

    def test_fetch_failures_accessor(self):
        """Public accessor so callers never reach into ``_fetchers``."""
        eng, _ = run_job()
        assert eng.fetch_failures() == sum(
            f.fetch_failures for f in eng._fetchers.values()
        )
        assert eng.fetch_failures() == 0  # healthy network, no retries
