"""Tests for the discrete-event kernel."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim import Simulator


class TestClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule(2.5, lambda: None)
        sim.run()
        assert sim.now == 2.5

    def test_run_until_advances_clock_without_events(self):
        sim = Simulator()
        sim.run(until=3.0)
        assert sim.now == 3.0


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_fifo(self):
        sim = Simulator()
        order = []
        for i in range(10):
            sim.schedule(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == list(range(10))

    def test_zero_delay_fires_after_current(self):
        sim = Simulator()
        order = []

        def outer():
            order.append("outer")
            sim.schedule(0.0, lambda: order.append("inner"))

        sim.schedule(1.0, outer)
        sim.run()
        assert order == ["outer", "inner"]
        assert sim.now == 1.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulingError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SchedulingError):
            sim.schedule_at(5.0, lambda: None)

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [2.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        h = sim.schedule(1.0, lambda: fired.append(1))
        h.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        h.cancel()
        h.cancel()
        assert h.cancelled

    def test_handle_state_transitions(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        assert h.pending and not h.fired
        sim.run()
        assert h.fired and not h.pending

    def test_cancel_after_fire_is_safe(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.run()
        h.cancel()  # no error
        assert h.fired


class TestRunControl:
    def test_run_until_leaves_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1, 5]

    def test_stop_exits_loop(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append(1)
            sim.stop()

        sim.schedule(1.0, first)
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_run_is_not_reentrant(self):
        sim = Simulator()

        def reenter():
            sim.run()

        sim.schedule(1.0, reenter)
        with pytest.raises(SimulationError):
            sim.run()

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.001, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_max_events_with_compaction_mid_run(self):
        """run(max_events=...) across a lazy-cancel compaction.

        A mass cancellation early in the run pushes the cancelled share
        past the compaction threshold, so the heap is physically rebuilt
        *while* a bounded run is dispatching. The budget must count only
        real dispatches (skipped tombstones are free), the guard must
        still fire exactly on budget, and resuming after the guard must
        deliver every surviving event exactly once.
        """
        sim = Simulator()
        fired = []
        handles = [
            sim.schedule(1.0 + i, lambda i=i: fired.append(i))
            for i in range(400)
        ]

        def cancel_tail():
            for h in handles[100:]:
                h.cancel()

        sim.schedule(0.5, cancel_tail)
        with pytest.raises(SimulationError) as exc:
            sim.run(max_events=50)
        assert "max_events=50" in str(exc.value)
        # 50 dispatches = the canceller + the first 49 survivors.
        assert fired == list(range(49))
        # Compaction ran mid-run: without it 351 entries (301 of them
        # tombstones) would remain; the rebuilt heap is far smaller.
        assert sim.pending_events <= 200
        sim.check_invariants()
        sim.run()
        assert fired == list(range(100))
        assert sim.events_processed == 101
        assert sim.pending_events == 0

    def test_step_returns_false_on_empty_heap(self):
        assert Simulator().step() is False

    def test_step_fires_exactly_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        assert sim.step() is True
        assert fired == ["a"]

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_step_respects_stop(self):
        """step() and run() share exit conditions: a stop request parks
        the stepped dispatch too, until explicitly cleared."""
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.stop()
        assert sim.step() is False
        assert fired == []
        sim.resume_stepping()
        assert sim.step() is True
        assert fired == [1]

    def test_step_feeds_profiler(self):
        """Regression: step() used to bypass the profiler, so stepped
        tests under-counted telemetry relative to run()."""
        from repro.telemetry.profiler import LoopProfiler

        sim = Simulator()
        prof = LoopProfiler().attach(sim)

        def cb():
            pass

        sim.schedule(1.0, cb)
        sim.schedule(2.0, cb)
        assert sim.step() is True
        assert sim.step() is True
        report = prof.finish()
        assert report["events"] == 2
        cats = report["categories"]
        key = next(iter(cats))
        assert cats[key]["events"] == 2
