"""Tests for queue monitoring and Figure-1 snapshots."""

import pytest

from repro.core import DropTail, QueueMonitor
from repro.core.monitor import take_snapshot
from repro.net.packet import (
    ECN_CE,
    ECN_ECT0,
    ECN_NOT_ECT,
    FLAG_ACK,
    FLAG_SYN,
    Packet,
)
from repro.sim import Simulator


def data(ect=True, seq=0):
    return Packet(src=0, sport=1, dst=1, dport=2, seq=seq, payload=1460,
                  ecn=ECN_ECT0 if ect else ECN_NOT_ECT)


class TestSnapshot:
    def test_classifies_queue_contents(self):
        q = DropTail(100)
        q.enqueue(data(), 0.0)
        q.enqueue(data(ect=False), 0.0)
        q.enqueue(Packet(src=1, sport=2, dst=0, dport=1, flags=FLAG_ACK), 0.0)
        q.enqueue(Packet(src=0, sport=1, dst=1, dport=2, flags=FLAG_SYN), 0.0)
        ce = data()
        ce.mark_ce()
        q.enqueue(ce, 0.0)
        s = take_snapshot(q, 1.0)
        assert s.ect_data == 1
        assert s.nonect_data == 1
        assert s.pure_acks == 1
        assert s.syns == 1
        assert s.ce_marked == 1
        assert s.qlen_packets == 5

    def test_occupancy_fraction(self):
        q = DropTail(10)
        for i in range(5):
            q.enqueue(data(seq=i), 0.0)
        s = take_snapshot(q, 0.0)
        assert s.occupancy == pytest.approx(0.5)

    def test_ect_fraction(self):
        q = DropTail(10)
        q.enqueue(data(), 0.0)
        q.enqueue(data(ect=False), 0.0)
        s = take_snapshot(q, 0.0)
        assert s.ect_fraction == pytest.approx(0.5)

    def test_empty_queue_snapshot(self):
        s = take_snapshot(DropTail(10), 0.0)
        assert s.qlen_packets == 0
        assert s.ect_fraction == 0.0


class TestMonitor:
    def test_samples_at_interval(self):
        sim = Simulator()
        q = DropTail(10)
        mon = QueueMonitor(sim, q, interval=0.1)
        mon.start()
        q.enqueue(data(), 0.0)
        sim.run(until=0.55)
        assert len(mon.snapshots) == 5
        assert all(s.qlen_packets == 1 for s in mon.snapshots)

    def test_stop(self):
        sim = Simulator()
        mon = QueueMonitor(sim, DropTail(10), interval=0.1)
        mon.start()
        sim.schedule(0.25, mon.stop)
        sim.run(until=1.0)
        assert len(mon.snapshots) == 2

    def test_aggregates(self):
        sim = Simulator()
        q = DropTail(10)
        mon = QueueMonitor(sim, q, interval=0.1)
        mon.start()
        q.enqueue(data(), 0.0)
        sim.schedule(0.15, lambda: q.enqueue(data(), sim.now))
        sim.run(until=0.35)
        # samples at .1 (1 pkt), .2 (2), .3 (2)
        assert mon.mean_qlen() == pytest.approx(5 / 3)
        assert mon.peak_qlen() == 2
        assert mon.busiest().qlen_packets == 2
        assert mon.mean_occupancy() == pytest.approx(5 / 30)

    def test_empty_monitor_aggregates(self):
        sim = Simulator()
        mon = QueueMonitor(sim, DropTail(10), interval=0.1)
        assert mon.mean_qlen() == 0.0
        assert mon.peak_qlen() == 0
        assert mon.busiest() is None
