"""Tests for the seeded RNG registry."""

from repro.sim import RngRegistry


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RngRegistry(seed=42).stream("tcp").random(10)
        b = RngRegistry(seed=42).stream("tcp").random(10)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=1).stream("tcp").random(10)
        b = RngRegistry(seed=2).stream("tcp").random(10)
        assert not (a == b).all()

    def test_different_names_are_independent(self):
        reg = RngRegistry(seed=7)
        a = reg.stream("red.queue0").random(10)
        b = reg.stream("red.queue1").random(10)
        assert not (a == b).all()

    def test_stream_order_does_not_matter(self):
        r1 = RngRegistry(seed=3)
        _ = r1.stream("a").random(100)
        x = r1.stream("b").random(5)
        r2 = RngRegistry(seed=3)
        y = r2.stream("b").random(5)
        assert (x == y).all()

    def test_stream_is_cached(self):
        reg = RngRegistry(seed=0)
        assert reg.stream("x") is reg.stream("x")


class TestApi:
    def test_uniform_in_range(self):
        reg = RngRegistry(seed=5)
        vals = [reg.uniform("u") for _ in range(100)]
        assert all(0.0 <= v < 1.0 for v in vals)

    def test_names_lists_created_streams(self):
        reg = RngRegistry(seed=0)
        reg.stream("b")
        reg.stream("a")
        assert reg.names() == ["a", "b"]

    def test_seed_property(self):
        assert RngRegistry(seed=99).seed == 99
