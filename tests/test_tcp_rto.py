"""Tests for the RFC 6298 RTT estimator."""

import pytest

from repro.errors import ConfigError
from repro.tcp import RttEstimator


class TestInitial:
    def test_initial_rto(self):
        est = RttEstimator(init_rto=0.05, min_rto=0.01)
        assert est.rto == pytest.approx(0.05)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ConfigError):
            RttEstimator(init_rto=0.001, min_rto=0.01)
        with pytest.raises(ConfigError):
            RttEstimator(init_rto=10.0, min_rto=0.01, max_rto=5.0)


class TestSampling:
    def test_first_sample_sets_srtt(self):
        est = RttEstimator(init_rto=1.0, min_rto=0.001)
        est.sample(0.1)
        assert est.srtt == pytest.approx(0.1)
        assert est.rttvar == pytest.approx(0.05)
        # RTO = srtt + 4*rttvar = 0.3
        assert est.rto == pytest.approx(0.3)

    def test_smoothing_converges(self):
        est = RttEstimator(init_rto=1.0, min_rto=0.001)
        for _ in range(100):
            est.sample(0.2)
        assert est.srtt == pytest.approx(0.2, rel=1e-3)
        assert est.rttvar == pytest.approx(0.0, abs=1e-3)

    def test_rto_clamped_to_min(self):
        est = RttEstimator(init_rto=0.05, min_rto=0.01)
        for _ in range(50):
            est.sample(1e-4)  # 100 us RTT
        assert est.rto == pytest.approx(0.01)

    def test_rto_clamped_to_max(self):
        est = RttEstimator(init_rto=0.05, min_rto=0.01, max_rto=1.0)
        est.sample(10.0)
        assert est.rto == pytest.approx(1.0)

    def test_variance_reacts_to_jitter(self):
        est = RttEstimator(init_rto=1.0, min_rto=0.001)
        est.sample(0.1)
        var_before = est.rttvar
        est.sample(0.5)
        assert est.rttvar > var_before

    def test_negative_sample_rejected(self):
        est = RttEstimator()
        with pytest.raises(ConfigError):
            est.sample(-1.0)

    def test_sample_counter(self):
        est = RttEstimator()
        est.sample(0.1)
        est.sample(0.1)
        assert est.samples == 2


class TestBackoff:
    def test_backoff_doubles(self):
        est = RttEstimator(init_rto=0.1, min_rto=0.01, max_rto=100.0)
        base = est.rto
        est.backoff()
        assert est.rto == pytest.approx(2 * base)
        est.backoff()
        assert est.rto == pytest.approx(4 * base)

    def test_backoff_capped_by_max_rto(self):
        est = RttEstimator(init_rto=0.1, min_rto=0.01, max_rto=0.5)
        for _ in range(10):
            est.backoff()
        assert est.rto == pytest.approx(0.5)

    def test_sample_resets_backoff(self):
        est = RttEstimator(init_rto=0.1, min_rto=0.01, max_rto=100.0)
        est.backoff()
        est.backoff()
        est.sample(0.1)
        assert est.rto == pytest.approx(0.3)  # srtt + 4*rttvar, no backoff

    def test_reset_backoff(self):
        est = RttEstimator(init_rto=0.1, min_rto=0.01, max_rto=100.0)
        est.backoff()
        est.reset_backoff()
        assert est.rto == pytest.approx(0.1)

    def test_twenty_consecutive_timeouts_saturate(self):
        # A long blackout: 20+ RTOs in a row. The effective RTO must pin
        # at max_rto and the internal multiplier must saturate rather
        # than keep doubling towards float overflow.
        est = RttEstimator(init_rto=0.05, min_rto=0.01, max_rto=2.0)
        for _ in range(25):
            est.backoff()
        assert est.rto == pytest.approx(2.0)
        # Doubling stops once the product reaches max_rto, so the raw
        # product can overshoot it by at most one doubling.
        assert est._rto * est._backoff <= 2 * est.max_rto

    def test_sample_after_long_blackout_recovers(self):
        est = RttEstimator(init_rto=0.05, min_rto=0.01, max_rto=2.0)
        for _ in range(25):
            est.backoff()
        est.sample(0.05)
        assert est.rto == pytest.approx(0.05 + 4 * 0.025)
