"""Tests for the traffic-generation subsystem: CDFs, generators,
partition-aggregate RPC, and the WorkloadMix composition layer."""

import numpy as np
import pytest

from repro.core import DropTail
from repro.errors import ConfigError
from repro.net import build_single_rack
from repro.sim import Simulator
from repro.sim.rng import RngRegistry
from repro.tcp import TcpConfig
from repro.units import gbps, kb, mb, us
from repro.workloads import (
    DATA_MINING,
    WEB_SEARCH,
    ClosedLoopGenerator,
    OpenLoopGenerator,
    PartitionAggregateWorkload,
    SizeCDF,
    WorkloadMix,
    named_cdf,
)


def rack(sim, n=4):
    return build_single_rack(sim, n, lambda nm: DropTail(200, name=nm),
                             link_rate_bps=gbps(1), link_delay_s=us(20))


class TestSizeCDF:
    def test_sample_is_monotone_in_u(self):
        for cdf in (WEB_SEARCH, DATA_MINING):
            samples = [cdf.sample(u) for u in np.linspace(0.0, 1.0, 101)]
            assert samples == sorted(samples)

    def test_sample_bounds(self):
        assert WEB_SEARCH.sample(0.0) == WEB_SEARCH.min_bytes
        assert WEB_SEARCH.sample(1.0) == WEB_SEARCH.max_bytes

    def test_empirical_mean_matches_analytic(self):
        rng = np.random.default_rng(1)
        draws = [WEB_SEARCH.sample(float(u)) for u in rng.random(20000)]
        assert np.mean(draws) == pytest.approx(WEB_SEARCH.mean(), rel=0.1)

    def test_fixed_and_uniform(self):
        fixed = SizeCDF.fixed(5000)
        assert fixed.sample(0.0) == fixed.sample(0.99) == 5000
        uni = SizeCDF.uniform(100, 200)
        assert uni.sample(0.5) == pytest.approx(150, abs=1)
        assert 100 <= uni.sample(0.01) <= uni.sample(0.98) <= 200

    def test_truncated_caps_tail(self):
        t = WEB_SEARCH.truncated(mb(1))
        assert t.max_bytes == mb(1)
        assert t.sample(1.0) == mb(1)
        # head of the distribution is untouched
        assert t.sample(0.1) == WEB_SEARCH.sample(0.1)
        assert t.mean() < WEB_SEARCH.mean()

    def test_named_cdf_specs(self):
        assert named_cdf("web-search") is WEB_SEARCH
        assert named_cdf("data-mining") is DATA_MINING
        assert named_cdf("fixed:1234").sample(0.5) == 1234
        assert named_cdf("uniform:10:20").min_bytes == 10
        with pytest.raises(ConfigError):
            named_cdf("no-such-cdf")
        with pytest.raises(ConfigError):
            named_cdf("uniform:20:10")

    def test_invalid_points_raise(self):
        with pytest.raises(ConfigError):
            SizeCDF([(100, 0.5), (50, 1.0)], "bad")    # sizes not monotone
        with pytest.raises(ConfigError):
            SizeCDF([(100, 0.5), (200, 0.9)], "bad")   # does not reach 1.0
        with pytest.raises(ConfigError):
            SizeCDF([(100, 0.7), (200, 0.7), (300, 1.0)], "bad")


class TestOpenLoopGenerator:
    def build(self, sim, seed=9, **kw):
        spec = rack(sim, 4)
        rng = RngRegistry(seed)
        kw.setdefault("rate_fps", 200.0)
        kw.setdefault("sizes", SizeCDF.fixed(kb(20)))
        kw.setdefault("max_flows", 25)
        return OpenLoopGenerator(sim, spec.hosts, TcpConfig(),
                                 rng=rng.stream("workload.gen"), **kw)

    def run_once(self, seed=9, **kw):
        sim = Simulator()
        gen = self.build(sim, seed=seed, **kw)
        gen.start()
        sim.run(until=10.0)
        return gen

    def test_max_flows_and_completion(self):
        gen = self.run_once()
        assert gen.issued == 25
        assert len(gen.results) == 25
        assert gen.in_flight == 0
        assert all(not r.failed for r in gen.results)

    def test_deterministic_under_fixed_seed(self):
        def trace(gen):
            return [(r.src, r.dst, r.nbytes, r.start_time, r.fct)
                    for r in gen.results]
        assert trace(self.run_once(seed=5)) == trace(self.run_once(seed=5))
        assert trace(self.run_once(seed=5)) != trace(self.run_once(seed=6))

    def test_poisson_rate_sanity(self):
        gen = self.run_once(rate_fps=500.0, max_flows=200)
        starts = sorted(r.start_time for r in gen.results)
        mean_gap = (starts[-1] - starts[0]) / (len(starts) - 1)
        assert mean_gap == pytest.approx(1 / 500.0, rel=0.3)

    def test_deterministic_arrivals_evenly_spaced(self):
        gen = self.run_once(arrival="deterministic", rate_fps=100.0,
                            max_flows=10)
        starts = sorted(r.start_time for r in gen.results)
        gaps = np.diff(starts)
        assert np.allclose(gaps, 0.01, atol=1e-9)

    def test_src_dst_distinct(self):
        gen = self.run_once()
        assert all(r.src != r.dst for r in gen.results)

    def test_stop_halts_arrivals(self):
        sim = Simulator()
        gen = self.build(sim, max_flows=None)
        gen.start()
        sim.schedule(0.05, gen.stop)
        sim.run(until=10.0)
        assert not gen.running
        assert gen.issued == len(gen.results) > 0

    def test_bad_params_raise(self):
        sim = Simulator()
        spec = rack(sim, 4)
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigError):
            OpenLoopGenerator(sim, spec.hosts, TcpConfig(), rate_fps=0,
                              sizes=SizeCDF.fixed(100), rng=rng)
        with pytest.raises(ConfigError):
            OpenLoopGenerator(sim, spec.hosts, TcpConfig(), rate_fps=10,
                              sizes=SizeCDF.fixed(100), rng=rng,
                              arrival="bursty")
        with pytest.raises(ConfigError):
            OpenLoopGenerator(sim, spec.hosts[:1], TcpConfig(), rate_fps=10,
                              sizes=SizeCDF.fixed(100), rng=rng)


class TestClosedLoopGenerator:
    def run_once(self, seed=4, **kw):
        sim = Simulator()
        spec = rack(sim, 4)
        rng = RngRegistry(seed)
        kw.setdefault("n_workers", 3)
        kw.setdefault("sizes", SizeCDF.fixed(kb(10)))
        kw.setdefault("think_s", 0.005)
        kw.setdefault("max_flows", 30)
        gen = ClosedLoopGenerator(sim, spec.hosts, TcpConfig(),
                                  rng=rng.stream("workload.closed"), **kw)
        gen.start()
        sim.run(until=30.0)
        return gen

    def test_workers_cycle(self):
        gen = self.run_once()
        assert gen.issued == 30
        assert len(gen.results) == 30
        assert all(not r.failed for r in gen.results)

    def test_deterministic(self):
        def trace(gen):
            return [(r.src, r.dst, r.start_time) for r in gen.results]
        assert trace(self.run_once()) == trace(self.run_once())

    def test_at_most_n_workers_in_flight(self):
        gen = self.run_once(n_workers=2, max_flows=20)
        # closed loop: arrivals are completion-gated, so with 2 workers
        # the in-flight population can never exceed 2; the (sorted)
        # start of flow k must not precede the 2-back completion.
        starts = sorted(r.start_time for r in gen.results)
        ends = sorted(r.start_time + r.fct for r in gen.results)
        for k in range(2, len(starts)):
            assert starts[k] >= ends[k - 2] - 1e-9

    def test_fixed_think_time(self):
        gen = self.run_once(think="fixed", n_workers=1, max_flows=5)
        starts = sorted(r.start_time for r in gen.results)
        ends = sorted(r.start_time + r.fct for r in gen.results)
        for k in range(1, len(starts)):
            assert starts[k] == pytest.approx(ends[k - 1] + 0.005, abs=1e-6)


class TestPartitionAggregate:
    def run_once(self, seed=2, **kw):
        sim = Simulator()
        spec = rack(sim, 6)
        rng = RngRegistry(seed)
        kw.setdefault("rate_qps", 300.0)
        kw.setdefault("fanout", 4)
        kw.setdefault("response_bytes", kb(20))
        kw.setdefault("max_queries", 15)
        wl = PartitionAggregateWorkload(sim, spec.hosts, TcpConfig(),
                                        rng=rng.stream("workload.rpc"), **kw)
        wl.start()
        sim.run(until=30.0)
        return wl

    def test_queries_complete_with_fanout_responses(self):
        wl = self.run_once()
        assert wl.queries_issued == 15
        assert len(wl.results) == 15
        assert wl.queries_open == 0
        assert len(wl.flow_results) == 15 * 4
        for q in wl.results:
            assert q.ok
            assert q.n_workers == 4
            assert q.qct > 0
            assert q.response_bytes == 4 * kb(20)

    def test_workers_exclude_aggregator(self):
        wl = self.run_once()
        by_query = {}
        for f in wl.flow_results:
            by_query.setdefault(f.dst, set()).add(f.src)
        for agg, workers in by_query.items():
            assert agg not in workers

    def test_deadline_accounting(self):
        # An absurdly tight deadline: every query must miss.
        wl = self.run_once(deadline_s=1e-6)
        assert wl.deadline_miss_rate() == 1.0
        assert all(q.missed for q in wl.results)
        # A generous one: none miss.
        wl = self.run_once(deadline_s=10.0)
        assert wl.deadline_miss_rate() == 0.0

    def test_no_deadline_means_no_verdict(self):
        wl = self.run_once()
        assert wl.deadline_miss_rate() == 0.0
        assert all(q.missed is None for q in wl.results)

    def test_deterministic(self):
        def trace(wl):
            return [(q.query_id, q.aggregator, q.start_time, q.end_time)
                    for q in wl.results]
        assert trace(self.run_once(seed=8)) == trace(self.run_once(seed=8))

    def test_response_sizes_from_cdf(self):
        wl = self.run_once(response_bytes=SizeCDF.uniform(kb(5), kb(30)))
        sizes = {f.nbytes for f in wl.flow_results}
        assert len(sizes) > 1
        assert all(kb(5) <= s <= kb(30) for s in sizes)

    def test_bad_fanout_raises(self):
        sim = Simulator()
        spec = rack(sim, 4)
        with pytest.raises(ConfigError):
            PartitionAggregateWorkload(sim, spec.hosts, TcpConfig(),
                                       rng=np.random.default_rng(0),
                                       rate_qps=10, fanout=4)


class TestWorkloadMix:
    def build(self, seed=3):
        sim = Simulator()
        spec = rack(sim, 6)
        rng = RngRegistry(seed)
        mix = WorkloadMix(sim, spec.hosts, spec.link_rate_bps)
        mix.add_rpc("rpc", TcpConfig(), rng.stream("workload.rpc"),
                    rate_qps=200.0, fanout=3, deadline_s=0.05,
                    max_queries=10)
        mix.add_open_loop("bg", TcpConfig(), rng.stream("workload.bg"),
                          rate_fps=100.0, sizes=SizeCDF.fixed(kb(30)),
                          max_flows=12)
        return sim, mix

    def test_result_buckets_per_workload(self):
        sim, mix = self.build()
        mix.start()
        sim.run(until=10.0)
        summary = mix.summary()
        assert set(summary) == {"rpc", "bg"}
        assert summary["rpc"]["kind"] == "partition-aggregate"
        assert summary["rpc"]["queries_completed"] == 10
        assert summary["bg"]["kind"] == "open-loop"
        assert summary["bg"]["flows"] == 12
        assert summary["bg"]["slowdown"]["p99"] >= 1.0
        # distinct allocator-assigned ports
        assert summary["rpc"]["port"] != summary["bg"]["port"]
        results = mix.results()
        assert len(results["rpc"]) == 10 and len(results["bg"]) == 12

    def test_deterministic_composition(self):
        def run(seed):
            sim, mix = self.build(seed)
            mix.start()
            sim.run(until=10.0)
            return mix.summary()
        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_start_stop_windows(self):
        sim = Simulator()
        spec = rack(sim, 4)
        rng = RngRegistry(1)
        mix = WorkloadMix(sim, spec.hosts, spec.link_rate_bps)
        gen = mix.add_open_loop("windowed", TcpConfig(),
                                rng.stream("workload.win"), rate_fps=500.0,
                                sizes=SizeCDF.fixed(kb(5)),
                                start_s=0.1, stop_s=0.2)
        mix.start()
        sim.run(until=5.0)
        assert gen.issued > 0
        starts = [r.start_time for r in gen.results]
        assert min(starts) >= 0.1
        assert max(starts) <= 0.2 + 1e-9

    def test_duplicate_name_rejected(self):
        sim, mix = self.build()
        with pytest.raises(ConfigError):
            mix.add_open_loop("rpc", TcpConfig(), np.random.default_rng(0),
                              rate_fps=1.0, sizes=SizeCDF.fixed(100))

    def test_start_twice_rejected(self):
        sim, mix = self.build()
        mix.start()
        with pytest.raises(ConfigError):
            mix.start()

    def test_empty_mix_rejected(self):
        sim = Simulator()
        spec = rack(sim, 4)
        mix = WorkloadMix(sim, spec.hosts, spec.link_rate_bps)
        with pytest.raises(ConfigError):
            mix.start()

    def test_bad_window_rejected(self):
        sim, mix = self.build()
        with pytest.raises(ConfigError):
            mix.add_open_loop("w", TcpConfig(), np.random.default_rng(0),
                              rate_fps=1.0, sizes=SizeCDF.fixed(100),
                              start_s=0.5, stop_s=0.5)

    def test_stop_all(self):
        sim, mix = self.build()
        mix.start()
        sim.schedule(0.02, mix.stop_all)
        sim.run(until=10.0)
        assert mix.active_count() == 0
