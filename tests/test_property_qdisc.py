"""Property-based tests (hypothesis) on queue-discipline invariants.

Whatever packet sequence is thrown at a queue, the bookkeeping must
balance: arrivals = departures + drops + still-queued, bytes likewise,
occupancy never exceeds the limit, FIFO order is preserved, and the
paper-critical invariants hold (ECT packets are never early-dropped by an
ECN AQM; the marking queue never early-drops anybody).
"""

from hypothesis import given, settings, strategies as st

from repro.core import (
    DropTail,
    ProtectionMode,
    RedParams,
    RedQueue,
    SimpleMarkingQueue,
)
from repro.net.packet import (
    ECN_ECT0,
    ECN_NOT_ECT,
    FLAG_ACK,
    FLAG_CWR,
    FLAG_ECE,
    FLAG_SYN,
    Packet,
)

# -- packet strategy ----------------------------------------------------------

_kinds = st.sampled_from(["data_ect", "data_nonect", "ack", "ack_ece", "syn"])


def make_packet(kind: str, i: int) -> Packet:
    if kind == "data_ect":
        return Packet(src=0, sport=1, dst=1, dport=2, seq=i, payload=1460,
                      ecn=ECN_ECT0, flags=FLAG_ACK)
    if kind == "data_nonect":
        return Packet(src=0, sport=1, dst=1, dport=2, seq=i, payload=1460,
                      ecn=ECN_NOT_ECT, flags=FLAG_ACK)
    if kind == "ack":
        return Packet(src=1, sport=2, dst=0, dport=1, flags=FLAG_ACK)
    if kind == "ack_ece":
        return Packet(src=1, sport=2, dst=0, dport=1, flags=FLAG_ACK | FLAG_ECE)
    return Packet(src=0, sport=1, dst=1, dport=2,
                  flags=FLAG_SYN | FLAG_ECE | FLAG_CWR)


#: A scenario: sequence of (kind, dequeue_between) operations.
_scenarios = st.lists(
    st.tuples(_kinds, st.booleans()), min_size=1, max_size=200
)

_queues = st.sampled_from(["droptail", "red-default", "red-ece",
                           "red-acksyn", "marking"])


def build_queue(kind: str, limit: int):
    if kind == "droptail":
        return DropTail(limit)
    if kind == "marking":
        return SimpleMarkingQueue(limit, mark_threshold=limit // 4 or 1)
    protection = {
        "red-default": ProtectionMode.DEFAULT,
        "red-ece": ProtectionMode.ECE,
        "red-acksyn": ProtectionMode.ACK_SYN,
    }[kind]
    params = RedParams(
        min_th=max(1, limit // 8), max_th=max(2, limit // 3),
        use_instantaneous=True, ecn=True, protection=protection,
    )
    return RedQueue(limit, params)


class TestConservation:
    @given(qkind=_queues, limit=st.integers(2, 64), ops=_scenarios)
    @settings(max_examples=60, deadline=None)
    def test_packet_and_byte_conservation(self, qkind, limit, ops):
        q = build_queue(qkind, limit)
        t = 0.0
        for i, (pkind, deq) in enumerate(ops):
            t += 1e-6
            q.enqueue(make_packet(pkind, i), t)
            if deq:
                q.dequeue(t)
        st_ = q.stats
        assert st_.arrivals == st_.departures + st_.drops + len(q)
        assert q.qlen_bytes == st_.arrival_bytes - st_.departure_bytes - (
            st_.arrival_bytes - st_.departure_bytes - q.qlen_bytes
        )
        assert q.qlen_bytes >= 0

    @given(qkind=_queues, limit=st.integers(1, 32), ops=_scenarios)
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_limit(self, qkind, limit, ops):
        q = build_queue(qkind, limit)
        t = 0.0
        for i, (pkind, deq) in enumerate(ops):
            t += 1e-6
            q.enqueue(make_packet(pkind, i), t)
            assert len(q) <= limit
            if deq:
                q.dequeue(t)

    @given(qkind=_queues, limit=st.integers(2, 64), ops=_scenarios)
    @settings(max_examples=30, deadline=None)
    def test_per_class_drops_bounded_by_arrivals(self, qkind, limit, ops):
        q = build_queue(qkind, limit)
        t = 0.0
        for i, (pkind, deq) in enumerate(ops):
            t += 1e-6
            q.enqueue(make_packet(pkind, i), t)
            if deq:
                q.dequeue(t)
        s = q.stats
        assert s.ack_drops <= s.ack_arrivals
        assert s.ect_drops <= s.ect_arrivals
        assert s.syn_drops <= s.syn_arrivals
        assert s.marks <= s.ect_arrivals


class TestFifo:
    @given(ops=_scenarios)
    @settings(max_examples=30, deadline=None)
    def test_droptail_fifo_order(self, ops):
        q = DropTail(1 << 30)
        t = 0.0
        accepted = []
        for i, (pkind, _deq) in enumerate(ops):
            t += 1e-6
            p = make_packet(pkind, i)
            if q.enqueue(p, t):
                accepted.append(p.pkt_id)
        out = []
        while True:
            p = q.dequeue(t)
            if p is None:
                break
            out.append(p.pkt_id)
        assert out == accepted


class TestPaperInvariants:
    @given(limit=st.integers(4, 64), ops=_scenarios)
    @settings(max_examples=60, deadline=None)
    def test_ecn_red_never_early_drops_ect(self, limit, ops):
        """NS-2 setbit semantics: ECT packets are marked, not early-dropped;
        every ECT drop must be a tail drop (queue physically full)."""
        q = build_queue("red-default", limit)
        t = 0.0
        for i, (pkind, deq) in enumerate(ops):
            t += 1e-6
            p = make_packet(pkind, i)
            was_full = q.is_full
            ok = q.enqueue(p, t)
            if p.is_ect and not ok:
                assert was_full  # only the physical limit drops ECT
            if deq:
                q.dequeue(t)

    @given(limit=st.integers(1, 64), ops=_scenarios)
    @settings(max_examples=60, deadline=None)
    def test_marking_queue_never_early_drops(self, limit, ops):
        q = SimpleMarkingQueue(limit, mark_threshold=1)
        t = 0.0
        for i, (pkind, deq) in enumerate(ops):
            t += 1e-6
            q.enqueue(make_packet(pkind, i), t)
            if deq:
                q.dequeue(t)
        assert q.stats.drops_early == 0

    @given(limit=st.integers(4, 64), ops=_scenarios)
    @settings(max_examples=60, deadline=None)
    def test_acksyn_mode_never_early_drops_acks_or_syns(self, limit, ops):
        q = build_queue("red-acksyn", limit)
        t = 0.0
        for i, (pkind, deq) in enumerate(ops):
            t += 1e-6
            p = make_packet(pkind, i)
            was_full = q.is_full
            ok = q.enqueue(p, t)
            if (p.is_pure_ack or p.is_syn) and not ok:
                assert was_full
            if deq:
                q.dequeue(t)

    @given(limit=st.integers(4, 64), ops=_scenarios)
    @settings(max_examples=30, deadline=None)
    def test_non_ect_never_marked(self, limit, ops):
        for qkind in ("red-default", "marking"):
            q = build_queue(qkind, limit)
            t = 0.0
            for i, (pkind, deq) in enumerate(ops):
                t += 1e-6
                p = make_packet(pkind, i)
                ect_before = p.is_ect
                q.enqueue(p, t)
                if not ect_before:
                    assert not p.is_ce
                if deq:
                    q.dequeue(t)
