"""Property-based tests on TCP data-integrity invariants.

The receiver's out-of-order buffer and the sender's window arithmetic
must deliver every byte exactly once no matter how the network reorders,
duplicates or drops segments.
"""

from hypothesis import given, settings, strategies as st

from repro.tcp.endpoint import TcpListener, _ReceiverState
from repro.tcp.rto import RttEstimator


class TestOooBuffer:
    """Drive the listener's interval logic directly with segment lists."""

    @staticmethod
    def drain(segments, total):
        """Feed segments (start, end) in the given order through the
        interval machinery; return the final rcv_nxt."""
        stt = _ReceiverState(peer=0, peer_port=0, ecn_ok=False)
        for s, e in segments:
            if e <= stt.rcv_nxt:
                continue
            if s > stt.rcv_nxt:
                TcpListener._insert_ooo(stt, s, e)
                continue
            stt.rcv_nxt = max(stt.rcv_nxt, e)
            TcpListener._drain_ooo(stt)
        return stt

    @given(
        perm=st.permutations(list(range(20))),
        dup=st.lists(st.integers(0, 19), max_size=10),
    )
    @settings(max_examples=100, deadline=None)
    def test_any_order_with_duplicates_reassembles(self, perm, dup):
        mss = 100
        order = list(perm) + dup
        segments = [(i * mss, (i + 1) * mss) for i in order]
        stt = self.drain(segments, 20 * mss)
        assert stt.rcv_nxt == 20 * mss
        assert stt.ooo == []

    @given(subset=st.sets(st.integers(0, 19), min_size=1, max_size=19))
    @settings(max_examples=100, deadline=None)
    def test_holes_stall_rcv_nxt(self, subset):
        """Missing segment 0 means rcv_nxt must stay 0."""
        mss = 100
        if 0 in subset:
            subset = subset - {0}
            if not subset:
                return
        segments = [(i * mss, (i + 1) * mss) for i in sorted(subset)]
        stt = self.drain(segments, 20 * mss)
        assert stt.rcv_nxt == 0
        # all bytes are buffered out-of-order, none lost
        buffered = sum(e - s for s, e in stt.ooo)
        assert buffered == len(subset) * mss

    @given(
        intervals=st.lists(
            st.tuples(st.integers(0, 500), st.integers(1, 100)),
            min_size=1, max_size=50,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_ooo_intervals_stay_sorted_and_disjoint(self, intervals):
        stt = _ReceiverState(peer=0, peer_port=0, ecn_ok=False)
        for start, length in intervals:
            if start == 0:
                continue  # keep everything out-of-order
            TcpListener._insert_ooo(stt, start, start + length)
            for (s1, e1), (s2, e2) in zip(stt.ooo, stt.ooo[1:]):
                assert e1 < s2  # disjoint and sorted
            for s, e in stt.ooo:
                assert s < e


class TestRttEstimatorProperties:
    @given(samples=st.lists(st.floats(1e-6, 1.0), min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_rto_always_within_bounds(self, samples):
        est = RttEstimator(init_rto=0.05, min_rto=0.01, max_rto=4.0)
        for s in samples:
            est.sample(s)
            assert 0.01 <= est.rto <= 4.0

    @given(
        samples=st.lists(st.floats(1e-6, 1.0), min_size=1, max_size=50),
        backoffs=st.integers(0, 10),
    )
    @settings(max_examples=100, deadline=None)
    def test_backoff_monotone(self, samples, backoffs):
        est = RttEstimator(init_rto=0.05, min_rto=0.01, max_rto=4.0)
        for s in samples:
            est.sample(s)
        prev = est.rto
        for _ in range(backoffs):
            est.backoff()
            assert est.rto >= prev
            prev = est.rto

    @given(rtt=st.floats(1e-5, 0.5))
    @settings(max_examples=100, deadline=None)
    def test_constant_rtt_converges_to_its_vicinity(self, rtt):
        est = RttEstimator(init_rto=1.0, min_rto=1e-4, max_rto=10.0)
        for _ in range(200):
            est.sample(rtt)
        assert est.srtt is not None
        assert abs(est.srtt - rtt) < 1e-9
        assert est.rto <= max(rtt * 1.5, 1e-4) or est.rto == est.min_rto
