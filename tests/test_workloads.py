"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.core import DropTail
from repro.errors import ConfigError
from repro.net import build_single_rack
from repro.sim import Simulator
from repro.tcp import TcpConfig
from repro.units import gbps, kb, us
from repro.workloads import LatencyProbe, all_to_all, incast, permutation


def rack(sim, n=4):
    return build_single_rack(sim, n, lambda nm: DropTail(200, name=nm),
                             link_rate_bps=gbps(1), link_delay_s=us(20))


class TestAllToAll:
    def test_flow_count(self):
        sim = Simulator()
        spec = rack(sim, 4)
        done = []
        flows = all_to_all(sim, spec.hosts, kb(50), TcpConfig(),
                           on_done=lambda r: done.append(r))
        assert len(flows) == 12  # 4*3 ordered pairs
        sim.run(until=30.0)
        assert len(done) == 12
        assert all(not r.failed for r in done)

    def test_stagger_spreads_starts(self):
        sim = Simulator()
        spec = rack(sim, 3)
        done = []
        all_to_all(sim, spec.hosts, kb(10), TcpConfig(),
                   on_done=lambda r: done.append(r), stagger=0.01)
        sim.run(until=30.0)
        starts = sorted(r.start_time for r in done)
        assert starts[-1] >= 0.02

    def test_requires_two_hosts(self):
        sim = Simulator()
        spec = rack(sim, 2)
        with pytest.raises(ConfigError):
            all_to_all(sim, spec.hosts[:1], kb(1), TcpConfig())


class TestIncast:
    def test_all_flows_target_receiver(self):
        sim = Simulator()
        spec = rack(sim, 5)
        done = []
        incast(sim, spec.hosts, 0, kb(100), TcpConfig(),
               on_done=lambda r: done.append(r))
        sim.run(until=30.0)
        assert len(done) == 4
        assert all(r.dst == spec.hosts[0].node_id for r in done)

    def test_receiver_not_sender(self):
        sim = Simulator()
        spec = rack(sim, 3)
        done = []
        incast(sim, spec.hosts, 1, kb(10), TcpConfig(),
               on_done=lambda r: done.append(r))
        sim.run(until=30.0)
        assert all(r.src != spec.hosts[1].node_id for r in done)


class TestPermutation:
    def test_ring_pattern(self):
        sim = Simulator()
        spec = rack(sim, 4)
        done = []
        permutation(sim, spec.hosts, kb(50), TcpConfig(),
                    on_done=lambda r: done.append(r))
        sim.run(until=30.0)
        assert len(done) == 4
        pairs = {(r.src, r.dst) for r in done}
        ids = [h.node_id for h in spec.hosts]
        assert pairs == {(ids[i], ids[(i + 1) % 4]) for i in range(4)}

    def test_permutation_goodput_near_line_rate(self):
        """One flow per link: every flow should run near line rate."""
        sim = Simulator()
        spec = rack(sim, 4)
        done = []
        permutation(sim, spec.hosts, kb(500), TcpConfig(),
                    on_done=lambda r: done.append(r))
        sim.run(until=30.0)
        for r in done:
            assert r.goodput_bps > 0.5e9


class TestLatencyProbe:
    def test_probes_complete(self):
        sim = Simulator()
        spec = rack(sim, 4)
        probe = LatencyProbe(sim, spec.hosts, TcpConfig(), interval=0.005,
                             rng=np.random.default_rng(3))
        probe.start()
        sim.run(until=0.1)
        probe.stop()
        sim.run(until=0.5)
        assert len(probe.results) >= 15
        assert all(not r.failed for r in probe.results)

    def test_fct_summary(self):
        sim = Simulator()
        spec = rack(sim, 4)
        probe = LatencyProbe(sim, spec.hosts, TcpConfig(), interval=0.005,
                             rng=np.random.default_rng(3))
        probe.start()
        sim.run(until=0.1)
        probe.stop()
        sim.run(until=0.5)
        s = probe.fct_summary()
        assert s.count == len(probe.results)
        assert 0 < s.mean < 0.05

    def test_distinct_endpoints(self):
        sim = Simulator()
        spec = rack(sim, 4)
        probe = LatencyProbe(sim, spec.hosts, TcpConfig(), interval=0.002,
                             rng=np.random.default_rng(5))
        probe.start()
        sim.run(until=0.05)
        probe.stop()
        sim.run(until=0.2)
        assert all(r.src != r.dst for r in probe.results)


class TestPortAllocator:
    def test_first_allocation_is_base(self):
        from repro.workloads import WORKLOAD_PORT_BASE, port_allocator
        sim = Simulator()
        assert port_allocator(sim).allocate() == WORKLOAD_PORT_BASE

    def test_sequential_and_per_sim(self):
        from repro.workloads import port_allocator
        sim_a, sim_b = Simulator(), Simulator()
        a = [port_allocator(sim_a).allocate() for _ in range(3)]
        assert a == [40000, 40001, 40002]
        # a fresh sim restarts from the base: per-run state, not global
        assert port_allocator(sim_b).allocate() == 40000

    def test_block_allocation_returns_first(self):
        from repro.workloads import port_allocator
        sim = Simulator()
        alloc = port_allocator(sim)
        assert alloc.allocate(count=4) == 40000
        assert alloc.allocate() == 40004

    def test_exhaustion_raises(self):
        from repro.workloads import PortAllocator
        alloc = PortAllocator(base=100, limit=102)
        alloc.allocate(2)
        with pytest.raises(ConfigError):
            alloc.allocate()

    def test_bad_count_raises(self):
        from repro.workloads import PortAllocator
        with pytest.raises(ConfigError):
            PortAllocator().allocate(0)

    def test_workloads_get_distinct_ports(self):
        from repro.workloads import incast as incast_fn
        sim = Simulator()
        spec = rack(sim, 4)
        cfg = TcpConfig()
        probe = LatencyProbe(sim, spec.hosts, cfg, interval=0.01,
                             rng=np.random.default_rng(1))
        flows = incast_fn(sim, spec.hosts, 0, kb(10), cfg)
        assert probe.port != flows[0].sender.dport


class TestBulkDeterminism:
    def run_once(self):
        sim = Simulator()
        spec = rack(sim, 4)
        done = []
        incast(sim, spec.hosts, 0, kb(100), TcpConfig(),
               on_done=lambda r: done.append(r))
        sim.run(until=30.0)
        return [(r.src, r.dst, r.start_time, r.fct, r.nbytes) for r in done]

    def test_back_to_back_runs_identical(self):
        assert self.run_once() == self.run_once()

    def test_explicit_port_override(self):
        sim = Simulator()
        spec = rack(sim, 3)
        done = []
        flows = permutation(sim, spec.hosts, kb(10), TcpConfig(),
                            on_done=lambda r: done.append(r), port=45555)
        assert all(f.sender.dport == 45555 for f in flows)
        sim.run(until=30.0)
        assert len(done) == 3 and all(not r.failed for r in done)


class TestBulkStagger:
    def test_incast_synchronised_starts(self):
        """Incast is the synchronised fan-in: all flows start together."""
        sim = Simulator()
        spec = rack(sim, 5)
        done = []
        incast(sim, spec.hosts, 0, kb(20), TcpConfig(),
               on_done=lambda r: done.append(r))
        sim.run(until=30.0)
        starts = {round(r.start_time, 9) for r in done}
        assert len(starts) == 1
