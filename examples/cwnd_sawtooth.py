#!/usr/bin/env python
"""Congestion-window sawtooths: TCP vs TCP-ECN vs DCTCP, visualised.

Three flows share one bottleneck (an incast of 3 senders into one host)
under the marking queue. A :class:`~repro.tcp.trace.CwndTracer` samples
the first sender's window and the script renders an ASCII strip chart —
the shapes the congestion-control literature always plots:

* NewReno over DropTail: tall sawtooth (halvings on loss);
* TCP-ECN over marking: the same halvings, but loss-free (ECE-driven);
* DCTCP over marking: the "sawtooth on a small scale" the paper
  describes — shallow α-proportional cuts around a stable operating
  point.

Run:  python examples/cwnd_sawtooth.py
"""

from repro.core import DropTail, SimpleMarkingQueue
from repro.net import build_single_rack
from repro.sim import Simulator
from repro.tcp import CwndTracer, TcpConfig, TcpListener, TcpVariant, start_bulk_flow
from repro.units import gbps, mb, us

CHART_WIDTH = 72
CHART_HEIGHT = 10


def run(queue_factory, variant):
    sim = Simulator()
    spec = build_single_rack(sim, 4, queue_factory,
                             link_rate_bps=gbps(1), link_delay_s=us(20))
    cfg = TcpConfig(variant=variant)
    TcpListener(sim, spec.hosts[0], 5000, cfg)
    tracer = None
    for src in (1, 2, 3):
        flow = start_bulk_flow(sim, spec.hosts[src], spec.hosts[0], 5000,
                               mb(4), cfg)
        if tracer is None:
            tracer = CwndTracer(sim, flow.sender, interval=2e-4)
            tracer.start()
    sim.run(until=30.0)
    return tracer


def strip_chart(series, width=CHART_WIDTH, height=CHART_HEIGHT) -> str:
    """Downsample a TimeSeries into an ASCII strip chart."""
    v = series.values
    if len(v) == 0:
        return "(no samples)"
    import numpy as np

    idx = np.linspace(0, len(v) - 1, width).astype(int)
    sampled = v[idx]
    top = sampled.max() or 1.0
    rows = []
    for level in range(height, 0, -1):
        cut = top * (level - 0.5) / height
        rows.append("".join("#" if s >= cut else " " for s in sampled))
    rows.append("-" * width)
    rows.append(f"peak cwnd {top / 1460:.0f} segments, "
                f"{len(v)} samples over {series.times[-1] * 1e3:.0f} ms")
    return "\n".join(rows)


def main() -> None:
    cases = [
        ("NewReno over DropTail (loss-driven sawtooth)",
         lambda nm: DropTail(50, name=nm), TcpVariant.RENO),
        ("TCP-ECN over marking (ECE-driven halvings, loss-free)",
         lambda nm: SimpleMarkingQueue(100, 8, name=nm), TcpVariant.ECN),
        ("DCTCP over marking (small-scale sawtooth)",
         lambda nm: SimpleMarkingQueue(100, 8, name=nm), TcpVariant.DCTCP),
    ]
    for title, qf, variant in cases:
        tracer = run(qf, variant)
        print(title)
        print(strip_chart(tracer.cwnd))
        print(f"window cuts: {tracer.n_cuts()}  "
              f"mean cut depth: {tracer.mean_cut_depth():.0%}\n")


if __name__ == "__main__":
    main()
