#!/usr/bin/env python
"""Mixed-use cluster: a latency-sensitive service sharing the rack with
Hadoop (the paper's motivating scenario).

A scaled Terasort runs while a :class:`~repro.workloads.probe.LatencyProbe`
issues small RPC-sized request flows between random hosts. The probe's
flow completion times stand in for the latency-sensitive service's
response times. Three fabrics are compared:

* DropTail with deep buffers — the Bufferbloat case,
* DropTail with shallow buffers,
* the paper's simple marking scheme with DCTCP.

The paper's conclusion — that marking lets low-latency services run
concurrently with Hadoop on the same infrastructure — shows up as an
order-of-magnitude drop in probe completion times at equal job runtime.

Run:  python examples/mixed_cluster_latency.py [--scale 0.25]
"""

import argparse

import numpy as np

from repro.core import DropTail, SimpleMarkingQueue
from repro.experiments.config import DEEP_BUFFER_PACKETS, SHALLOW_BUFFER_PACKETS
from repro.mapreduce import ClusterSpec, MapReduceEngine, NodeSpec, terasort_job
from repro.net import build_single_rack
from repro.sim import Simulator
from repro.tcp import TcpConfig, TcpVariant
from repro.units import fmt_time, gbps, mb, us
from repro.workloads import LatencyProbe

N_HOSTS = 16


def run(name, qdisc_factory, variant, scale):
    sim = Simulator()
    spec = build_single_rack(sim, N_HOSTS, qdisc_factory,
                             host_qdisc=qdisc_factory,
                             link_rate_bps=gbps(1), link_delay_s=us(20))
    cfg = TcpConfig(variant=variant)

    probe = LatencyProbe(sim, spec.hosts, cfg, interval=0.002,
                         rng=np.random.default_rng(7))
    probe.start(first_delay=0.001)

    engine = MapReduceEngine(
        sim, spec, ClusterSpec(N_HOSTS, NodeSpec()),
        terasort_job(mb(int(256 * scale)), block_size=mb(8), n_reducers=N_HOSTS),
        cfg, np.random.default_rng(42),
        on_job_done=lambda _r: (probe.stop(), sim.stop()),
    )
    engine.submit()
    sim.run(until=600.0)

    s = probe.fct_summary()
    print(f"{name:28s} job {fmt_time(engine.result.runtime):>9s}   "
          f"probe FCT p50 {fmt_time(s.p50):>9s}  p99 {fmt_time(s.p99):>9s}  "
          f"({s.count} probes)")
    return engine.result.runtime, s


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    args = parser.parse_args()

    print(f"Terasort ({int(256 * args.scale)} MB) + 500 req/s of 8 KB probes "
          f"on a {N_HOSTS}-node rack\n")
    run("DropTail deep buffers",
        lambda nm: DropTail(DEEP_BUFFER_PACKETS, name=nm), TcpVariant.RENO,
        args.scale)
    run("DropTail shallow buffers",
        lambda nm: DropTail(SHALLOW_BUFFER_PACKETS, name=nm), TcpVariant.RENO,
        args.scale)
    run("Simple marking + DCTCP",
        lambda nm: SimpleMarkingQueue(SHALLOW_BUFFER_PACKETS, 8, name=nm),
        TcpVariant.DCTCP, args.scale)
    print("\nMarking keeps batch throughput while the co-located service's")
    print("tail latency drops by an order of magnitude — the paper's pitch")
    print("for heterogeneous clusters.")


if __name__ == "__main__":
    main()
