#!/usr/bin/env python
"""Mixed-use cluster: latency-sensitive services sharing the rack with
Hadoop (the paper's motivating scenario), built on the WorkloadMix layer.

A scaled Terasort runs while a :class:`~repro.workloads.WorkloadMix`
drives two co-tenants on the same hosts:

* a partition-aggregate RPC service (fan-out queries with a 20 ms
  deadline — the web-search front-end pattern), and
* an open-loop stream of background flows drawn from the web-search
  flow-size CDF.

Three fabrics are compared:

* DropTail with deep buffers — the Bufferbloat case,
* DropTail with shallow buffers,
* the paper's simple marking scheme with DCTCP.

The paper's conclusion — that marking lets low-latency services run
concurrently with Hadoop on the same infrastructure — shows up as an
order-of-magnitude drop in the RPC tail and deadline-miss rate at equal
job runtime.

Run:  python examples/mixed_cluster_latency.py [--scale 0.25]
"""

import argparse

from repro.core import DropTail, SimpleMarkingQueue
from repro.experiments.config import DEEP_BUFFER_PACKETS, SHALLOW_BUFFER_PACKETS
from repro.mapreduce import ClusterSpec, MapReduceEngine, NodeSpec, terasort_job
from repro.net import build_single_rack
from repro.sim import Simulator
from repro.sim.rng import RngRegistry
from repro.tcp import TcpConfig, TcpVariant
from repro.units import fmt_time, gbps, mb, us
from repro.workloads import WEB_SEARCH, WorkloadMix

N_HOSTS = 16


def run(name, qdisc_factory, variant, scale):
    sim = Simulator()
    rng = RngRegistry(seed=7)
    spec = build_single_rack(sim, N_HOSTS, qdisc_factory,
                             host_qdisc=qdisc_factory,
                             link_rate_bps=gbps(1), link_delay_s=us(20))
    cfg = TcpConfig(variant=variant)

    mix = WorkloadMix(sim, spec.hosts, spec.link_rate_bps)
    rpc = mix.add_rpc("rpc", cfg, rng.stream("workload.rpc"),
                      rate_qps=200.0, fanout=8, response_bytes=20_000,
                      deadline_s=0.02)
    mix.add_open_loop("background", cfg, rng.stream("workload.bg"),
                      rate_fps=25.0, sizes=WEB_SEARCH.truncated(mb(1)))

    def job_done(_result):
        mix.stop_all()
        sim.schedule(0.25, sim.stop)  # drain in-flight queries/flows

    engine = MapReduceEngine(
        sim, spec, ClusterSpec(N_HOSTS, NodeSpec()),
        terasort_job(mb(int(256 * scale)), block_size=mb(8), n_reducers=N_HOSTS),
        cfg, rng.stream("hdfs"),
        on_job_done=job_done,
    )
    engine.submit()
    mix.start()
    sim.run(until=600.0)

    summary = mix.summary()
    qct = summary["rpc"]["qct_s"]
    bg = summary["background"]
    print(f"{name:28s} job {fmt_time(engine.result.runtime):>9s}   "
          f"rpc qct p50 {fmt_time(qct['p50']):>9s}  p99 {fmt_time(qct['p99']):>9s}  "
          f"miss {rpc.deadline_miss_rate():6.2%}   "
          f"bg p99 slowdown {bg['slowdown']['p99']:7.1f}x")
    return engine.result.runtime, summary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    args = parser.parse_args()

    print(f"Terasort ({int(256 * args.scale)} MB) + 200 qps of fanout-8 RPC "
          f"(20 ms deadline) + 25 fps web-search flows on a "
          f"{N_HOSTS}-node rack\n")
    run("DropTail deep buffers",
        lambda nm: DropTail(DEEP_BUFFER_PACKETS, name=nm), TcpVariant.RENO,
        args.scale)
    run("DropTail shallow buffers",
        lambda nm: DropTail(SHALLOW_BUFFER_PACKETS, name=nm), TcpVariant.RENO,
        args.scale)
    run("Simple marking + DCTCP",
        lambda nm: SimpleMarkingQueue(SHALLOW_BUFFER_PACKETS, 8, name=nm),
        TcpVariant.DCTCP, args.scale)
    print("\nMarking keeps batch throughput while the co-located services'")
    print("tail latency and deadline-miss rate collapse — the paper's pitch")
    print("for heterogeneous clusters.")


if __name__ == "__main__":
    main()
