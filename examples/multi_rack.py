#!/usr/bin/env python
"""Beyond one rack: the paper's findings on a leaf-spine fabric.

Runs the scaled Terasort on a 4-leaf x 2-spine fabric (16 hosts) at 1:1
and 2:1 oversubscription, comparing DropTail, default RED/ECN and the
marking scheme. Cross-rack shuffle flows now traverse spine uplinks
where returning ACKs mix with forward data from other racks — the same
asymmetry, two tiers up.

Run:  python examples/multi_rack.py [--scale 0.125]
"""

import argparse
from dataclasses import replace

from repro.core import ProtectionMode
from repro.experiments import ExperimentConfig, QueueSetup
from repro.experiments.multirack import MultiRackConfig, run_multirack_cell
from repro.tcp import TcpVariant
from repro.units import fmt_time, us


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.125)
    args = parser.parse_args()

    target = us(100)
    setups = [
        ("droptail", QueueSetup(kind="droptail"), TcpVariant.RENO),
        ("red-default", QueueSetup(kind="red", target_delay_s=target),
         TcpVariant.ECN),
        ("red-ack+syn", QueueSetup(kind="red", target_delay_s=target,
                                   protection=ProtectionMode.ACK_SYN),
         TcpVariant.ECN),
        ("marking", QueueSetup(kind="marking", target_delay_s=target),
         TcpVariant.DCTCP),
    ]

    print(f"{'queue':14s} {'oversub':>8s} {'runtime':>10s} {'latency':>10s} "
          f"{'ACK drops':>10s} {'RTOs':>6s}")
    print("-" * 64)
    for oversub in (1.0, 2.0):
        for name, queue, variant in setups:
            base = replace(
                ExperimentConfig(queue=queue, variant=variant,
                                 allow_timeout=True).scaled(args.scale),
            )
            cell = run_multirack_cell(MultiRackConfig(
                base=base, n_leaves=4, n_spines=2, hosts_per_leaf=4,
                oversubscription=oversub,
            ))
            m = cell.metrics
            print(f"{name:14s} {oversub:>7.1f}x {fmt_time(m.runtime):>10s} "
                  f"{fmt_time(m.mean_latency):>10s} {m.queue.ack_drops:>10d} "
                  f"{m.rtos:>6d}")
        print()
    print("Oversubscription tightens the spine bottleneck; the ordering")
    print("of the schemes survives the extra tier, as the paper expects.")


if __name__ == "__main__":
    main()
