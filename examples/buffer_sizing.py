#!/usr/bin/env python
"""Do you need deep buffers? A buffer-density sweep.

The paper's closing claim: with a true marking scheme, commodity
shallow-buffer switches match deep-buffer switches — the expensive buffer
density only matters for DropTail. This example sweeps the per-port
buffer from 25 to 1600 packets for both queue types, running the same
all-to-all transfer, and prints completion time and mean packet latency
at each point (the classic Bufferbloat curve for DropTail, a flat line
for marking).

Run:  python examples/buffer_sizing.py
"""

from repro.core import DropTail, SimpleMarkingQueue
from repro.net import build_single_rack
from repro.sim import Simulator
from repro.stats import LatencyCollector
from repro.tcp import TcpConfig, TcpVariant
from repro.units import fmt_time, gbps, kb, us
from repro.workloads import all_to_all

N_HOSTS = 8
FLOW_BYTES = kb(512)
BUFFERS = (25, 50, 100, 200, 400, 800, 1600)
MARK_THRESHOLD = 8


def run(qdisc_factory, variant):
    sim = Simulator()
    spec = build_single_rack(sim, N_HOSTS, qdisc_factory,
                             host_qdisc=qdisc_factory,
                             link_rate_bps=gbps(1), link_delay_s=us(20))
    lat = LatencyCollector().attach(spec.network)
    done = []
    all_to_all(sim, spec.hosts, FLOW_BYTES, TcpConfig(variant=variant),
               on_done=lambda r: done.append(r), stagger=0.001)
    sim.run(until=120.0)
    finish = max(r.end_time for r in done)
    return finish, lat.mean


def main() -> None:
    print(f"all-to-all, {N_HOSTS} hosts, {FLOW_BYTES // 1000} KB per pair\n")
    print(f"{'buffer':>8s}  {'DropTail finish':>15s} {'latency':>10s}  "
          f"{'Marking finish':>15s} {'latency':>10s}")
    print("-" * 68)
    for buf in BUFFERS:
        dt_finish, dt_lat = run(
            lambda nm, b=buf: DropTail(b, name=nm), TcpVariant.RENO)
        mk_finish, mk_lat = run(
            lambda nm, b=buf: SimpleMarkingQueue(b, MARK_THRESHOLD, name=nm),
            TcpVariant.DCTCP)
        print(f"{buf:>7d}p  {fmt_time(dt_finish):>15s} {fmt_time(dt_lat):>10s}  "
              f"{fmt_time(mk_finish):>15s} {fmt_time(mk_lat):>10s}")

    print("\nDropTail needs buffer to avoid loss (and pays for it in")
    print("latency as depth grows: Bufferbloat); the marking scheme is")
    print("flat in both columns — shallow commodity switches suffice.")


if __name__ == "__main__":
    main()
