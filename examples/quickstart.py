#!/usr/bin/env python
"""Quickstart: run one scaled Terasort under four switch configurations.

This is the paper's experiment in miniature: the same Hadoop job on the
same 16-node rack, with the ToR egress queues configured as

* DropTail           — the baseline every result is normalized against,
* RED + ECN, default — the misconfiguration the paper diagnoses,
* RED + ECN, ACK+SYN — the paper's protection patch,
* simple marking     — the paper's "true marking scheme" proposal,

and prints runtime / per-node throughput / mean packet latency for each.

Run:  python examples/quickstart.py [--scale 0.25]
"""

import argparse
import time

from repro.experiments import ExperimentConfig, QueueSetup, run_cell
from repro.core import ProtectionMode
from repro.tcp import TcpVariant
from repro.units import fmt_rate, fmt_time, us


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25,
                        help="Terasort dataset scale (1.0 = 256 MB)")
    args = parser.parse_args()

    target = us(100)  # aggressive marking threshold: ~8 packets at 1 Gbps
    setups = [
        ("DropTail (baseline)",
         QueueSetup(kind="droptail"), TcpVariant.RENO),
        ("RED+ECN default",
         QueueSetup(kind="red", target_delay_s=target), TcpVariant.ECN),
        ("RED+ECN ACK+SYN prot.",
         QueueSetup(kind="red", target_delay_s=target,
                    protection=ProtectionMode.ACK_SYN), TcpVariant.ECN),
        ("Simple marking (DCTCP)",
         QueueSetup(kind="marking", target_delay_s=target), TcpVariant.DCTCP),
    ]

    print(f"{'configuration':24s} {'runtime':>10s} {'tput/node':>12s} "
          f"{'latency':>10s} {'ACK drops':>10s}")
    print("-" * 72)
    baseline_runtime = None
    for name, queue, variant in setups:
        cfg = ExperimentConfig(queue=queue, variant=variant).scaled(args.scale)
        t0 = time.time()
        cell = run_cell(cfg)
        m = cell.metrics
        if baseline_runtime is None:
            baseline_runtime = m.runtime
        rel = m.runtime / baseline_runtime
        print(f"{name:24s} {fmt_time(m.runtime):>10s} "
              f"{fmt_rate(m.throughput_per_node_bps):>12s} "
              f"{fmt_time(m.mean_latency):>10s} "
              f"{m.queue.ack_drops:>10d}   "
              f"({rel:.2f}x baseline, {time.time() - t0:.0f}s wall)")

    print("\nThe paper's result in one table: default RED/ECN early-drops")
    print("non-ECT ACKs and loses throughput; protecting ACKs (or marking")
    print("instead of dropping) recovers it at a fraction of the latency.")


if __name__ == "__main__":
    main()
