#!/usr/bin/env python
"""Anatomy of the ACK-drop problem (the paper's Section II, live).

Runs an all-to-all bulk transfer — the shuffle traffic pattern with the
MapReduce machinery stripped away — over a single rack whose ToR queues
are RED with ECN, once per protection mode. Prints the per-class
arrival/drop table that is the paper's core evidence: with the default
AQM every early drop lands on a non-ECT packet (pure ACKs, SYNs) while
ECT data is only marked; the ECE-bit and ACK+SYN patches progressively
shield them.

Also renders the Figure-1-style snapshot of the busiest queue.

Run:  python examples/ack_drop_anatomy.py
"""

from repro.core import ProtectionMode, QueueMonitor, RedParams, RedQueue
from repro.experiments.figures import Fig1Data, render_fig1
from repro.net import build_single_rack
from repro.sim import Simulator
from repro.tcp import TcpConfig, TcpVariant
from repro.units import gbps, kb, us
from repro.workloads import all_to_all

N_HOSTS = 8
FLOW_BYTES = kb(512)


def run_mode(mode: ProtectionMode):
    sim = Simulator()
    params = RedParams(min_th=8, max_th=24, ecn=True, protection=mode)
    spec = build_single_rack(
        sim, N_HOSTS, lambda nm: RedQueue(100, params, name=nm),
        link_rate_bps=gbps(1), link_delay_s=us(20),
    )
    monitor = QueueMonitor(sim, spec.hot_ports[0].qdisc, interval=0.002)
    monitor.start()
    done = []
    all_to_all(sim, spec.hosts, FLOW_BYTES, TcpConfig(variant=TcpVariant.ECN),
               on_done=lambda r: done.append(r), stagger=0.001)
    sim.run(until=60.0)
    return spec.network.aggregate_switch_stats(), done, monitor


def main() -> None:
    print(f"all-to-all, {N_HOSTS} hosts x {FLOW_BYTES // 1000} KB to each peer, "
          f"RED min=8/max=24 pkts, ECN on\n")
    header = (f"{'protection':12s} {'early drops':>11s} {'ACK drops':>10s} "
              f"{'SYN drops':>10s} {'ECT drops':>10s} {'marks':>7s} "
              f"{'RTOs':>5s} {'finish':>9s}")
    print(header)
    print("-" * len(header))
    snapshot_monitor = None
    for mode in ProtectionMode:
        stats, flows, monitor = run_mode(mode)
        if mode is ProtectionMode.DEFAULT:
            snapshot_monitor = monitor
        finish = max(r.end_time for r in flows)
        rtos = sum(r.rtos for r in flows)
        print(f"{str(mode):12s} {stats.drops_early:>11d} {stats.ack_drops:>10d} "
              f"{stats.syn_drops:>10d} {stats.ect_drops:>10d} "
              f"{stats.marks:>7d} {rtos:>5d} {finish * 1e3:>7.1f}ms")

    busiest = snapshot_monitor.busiest()
    if busiest is not None:
        stats, _, _ = run_mode(ProtectionMode.DEFAULT)
        total_drops = stats.drops or 1
        fig1 = Fig1Data(
            snapshot=busiest,
            mark_threshold_packets=8,
            ack_arrival_share=stats.ack_arrivals / stats.arrivals,
            ack_drop_share=stats.ack_drops / total_drops,
            ack_drop_rate=stats.ack_drop_rate(),
            ect_drop_rate=stats.ect_drop_rate(),
            early_drops=stats.drops_early,
            marks=stats.marks,
        )
        print()
        print(render_fig1(fig1))


if __name__ == "__main__":
    main()
