"""Benchmarks for Tables I and II (exp ids T1, T2 in DESIGN.md).

The tables are definitional; the benchmark times their verification
against the packet model and asserts bit-for-bit agreement.
"""

from repro.experiments.tables import (
    render_table1,
    render_table2,
    verify_table1,
    verify_table2,
)

from conftest import run_once


def test_table1(benchmark):
    """T1 — ECN codepoints on the TCP header."""
    checks = run_once(benchmark, verify_table1)
    assert all(ok for _, ok in checks), checks
    text = render_table1()
    assert "ECE" in text and "CWR" in text


def test_table2(benchmark):
    """T2 — ECN codepoints on the IP header."""
    checks = run_once(benchmark, verify_table2)
    assert all(ok for _, ok in checks), checks
    text = render_table2()
    for name in ("Non-ECT", "ECT(0)", "ECT(1)", "CE"):
        assert name in text
