"""Extension benchmarks (beyond the paper's own figures).

* E1 — leaf-spine generalisation: the scheme ordering survives a second
  switching tier and oversubscription.
* E2 — workload generality: the paper's conclusion says its findings
  carry to any workload with a fabric-stressing shuffle; the preset
  sweep shows the effect scaling with shuffle volume and vanishing for
  the shuffle-light negative control.
"""

from dataclasses import replace

import numpy as np

from repro.core import DropTail, ProtectionMode
from repro.experiments import ExperimentConfig, QueueSetup
from repro.experiments.multirack import MultiRackConfig, run_multirack_cell
from repro.mapreduce import ClusterSpec, MapReduceEngine, NodeSpec, make_job
from repro.net import build_single_rack
from repro.sim import Simulator
from repro.tcp import TcpConfig, TcpVariant
from repro.units import gbps, mb, us

from conftest import run_once


def test_e1_leaf_spine_ordering(benchmark, bench_scale, bench_seed):
    """E1 — droptail vs red-default vs marking on an oversubscribed
    leaf-spine: marking keeps the lowest latency without losing runtime."""

    def build(queue, variant):
        base = replace(
            ExperimentConfig(queue=queue, variant=variant, seed=bench_seed,
                             allow_timeout=True).scaled(bench_scale),
        )
        return MultiRackConfig(base=base, n_leaves=4, n_spines=2,
                               hosts_per_leaf=4, oversubscription=2.0)

    def sweep():
        cells = {}
        cells["droptail"] = run_multirack_cell(
            build(QueueSetup(kind="droptail"), TcpVariant.RENO))
        cells["red-default"] = run_multirack_cell(
            build(QueueSetup(kind="red", target_delay_s=us(100)),
                  TcpVariant.ECN))
        cells["marking"] = run_multirack_cell(
            build(QueueSetup(kind="marking", target_delay_s=us(100)),
                  TcpVariant.DCTCP))
        return cells

    cells = run_once(benchmark, sweep)
    dt, rd, mk = (cells[k].metrics for k in ("droptail", "red-default", "marking"))
    assert mk.mean_latency < dt.mean_latency          # latency win survives
    assert mk.runtime <= rd.runtime + 0.02 * rd.runtime  # no runtime cost vs default AQM
    assert mk.queue.drops_early == 0


def test_e2_workload_generality(benchmark, bench_scale, bench_seed):
    """E2 — queue choice matters in proportion to shuffle volume."""

    def run_job(preset, qf, variant):
        sim = Simulator()
        n = 16
        spec = build_single_rack(sim, n, qf, host_qdisc=qf,
                                 link_rate_bps=gbps(1), link_delay_s=us(20))
        data = max(1, int(mb(128) * bench_scale * 2))
        eng = MapReduceEngine(
            sim, spec, ClusterSpec(n, NodeSpec()),
            make_job(preset, data, block_size=mb(2), n_reducers=n),
            TcpConfig(variant=variant), np.random.default_rng(bench_seed),
        )
        eng.submit()
        sim.run(until=600.0)
        assert eng.result is not None
        return eng.result

    def sweep():
        out = {}
        for preset in ("grep", "terasort", "join"):
            out[preset] = run_job(
                preset, lambda nm: DropTail(100, name=nm), TcpVariant.RENO
            )
        return out

    results = run_once(benchmark, sweep)
    # Shuffle volume tracks map selectivity across the presets...
    assert (results["grep"].bytes_shuffled
            < results["terasort"].bytes_shuffled
            < results["join"].bytes_shuffled)
    # ...and the shuffle-light negative control barely exercises the net.
    assert results["grep"].runtime < results["terasort"].runtime
