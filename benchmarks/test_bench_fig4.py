"""Benchmarks for Figure 4 (exp ids F4a, F4b): mean per-packet network
latency vs RED target delay, normalized to DropTail at the same depth."""

from repro.experiments.figures import fig4_latency, render_figure
from repro.tcp import TcpVariant

from conftest import run_once


def test_fig4a(benchmark, bench_scale, bench_seed):
    """F4a — shallow buffers, normalized to DropTail-shallow.

    Shape assertions: latency falls as the target delay tightens
    (monotone trend per series), and the aggressive end cuts latency to
    half or less of DropTail — the paper's "never lower than 50%"
    observation region.
    """
    fig = run_once(benchmark, fig4_latency, False, bench_scale, bench_seed)
    for key, vals in fig.series.items():
        assert vals[0] <= vals[-1] + 0.05, key  # tighter delay -> lower latency
        assert vals[0] <= 0.6, key
    assert render_figure(fig)


def test_fig4b(benchmark, bench_scale, bench_seed):
    """F4b — deep buffers, normalized to DropTail-deep.

    Shape assertions: the headline ~85% latency reduction appears (best
    point <= 0.25 of DropTail-deep), and the dashed shallow-DropTail
    reference sits far below 1.0 (deep DropTail is the Bufferbloat
    worst case).
    """
    fig = run_once(benchmark, fig4_latency, True, bench_scale, bench_seed)
    best = min(min(v) for v in fig.series.values())
    assert best <= 0.25  # >= 75% reduction; paper reports ~85%
    assert "droptail-shallow" in fig.references
    assert fig.references["droptail-shallow"] < 0.6
    for variant in (TcpVariant.ECN, TcpVariant.DCTCP):
        # marking achieves the lowest (or tied) latency band
        marking_best = min(fig.series[f"{variant}/marking"])
        default_best = min(fig.series[f"{variant}/red-default"])
        assert marking_best <= default_best + 0.05
    assert render_figure(fig)
