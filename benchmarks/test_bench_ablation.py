"""Ablation benchmarks for the design choices DESIGN.md §5 calls out.

Each ablation runs a small all-to-all transfer (the shuffle pattern
without the MapReduce machinery, for speed) and checks the directional
effect the literature predicts.
"""

import pytest

from repro.core import ProtectionMode, RedParams, RedQueue, SimpleMarkingQueue
from repro.net import build_single_rack
from repro.sim import Simulator
from repro.stats import LatencyCollector
from repro.tcp import TcpConfig, TcpVariant
from repro.units import gbps, kb, us
from repro.workloads import all_to_all

from conftest import run_once

N_HOSTS = 8
FLOW_BYTES = kb(256)


def run_a2a(qdisc_factory, variant=TcpVariant.ECN, delack_segments=2):
    """One all-to-all round; returns (finish time, mean latency, stats)."""
    sim = Simulator()
    spec = build_single_rack(sim, N_HOSTS, qdisc_factory,
                             host_qdisc=qdisc_factory,
                             link_rate_bps=gbps(1), link_delay_s=us(20))
    lat = LatencyCollector().attach(spec.network)
    done = []
    cfg = TcpConfig(variant=variant, delack_segments=delack_segments)
    all_to_all(sim, spec.hosts, FLOW_BYTES, cfg,
               on_done=lambda r: done.append(r), stagger=0.001)
    sim.run(until=120.0)
    assert len(done) == N_HOSTS * (N_HOSTS - 1)
    finish = max(r.end_time for r in done)
    return finish, lat.mean, spec.network.aggregate_switch_stats(), done


class TestPerPacketVsPerByte:
    """A1 — the paper blames *per-packet* RED thresholds for treating a
    150 B ACK like a 1500 B data packet. In byte mode an ACK weighs 1/10
    of a data packet, so the early-drop probability applied to ACKs
    drops sharply."""

    def test_byte_mode_spares_acks(self, benchmark):
        def ablation():
            pkt_params = RedParams(min_th=8, max_th=24, ecn=True)
            byte_params = RedParams(min_th=8, max_th=24, ecn=True,
                                    byte_mode=True)
            _, _, st_pkt, _ = run_a2a(
                lambda nm: RedQueue(100, pkt_params, name=nm))
            _, _, st_byte, _ = run_a2a(
                lambda nm: RedQueue(100, byte_params, name=nm))
            return st_pkt, st_byte

        st_pkt, st_byte = run_once(benchmark, ablation)
        assert st_pkt.ack_drops > 0
        assert st_byte.ack_drop_rate() < st_pkt.ack_drop_rate()


class TestInstantaneousVsEwma:
    """A2 — Wu et al. recommend the instantaneous queue length over the
    EWMA: the slow average lets bursts overflow the buffer before the
    AQM reacts, so EWMA shows more tail drops under bursty traffic."""

    def test_instantaneous_reduces_tail_drops(self, benchmark):
        def ablation():
            ewma = RedParams(min_th=8, max_th=24, ecn=True, wq=0.002)
            inst = RedParams(min_th=8, max_th=24, ecn=True,
                             use_instantaneous=True)
            _, _, st_ewma, _ = run_a2a(lambda nm: RedQueue(100, ewma, name=nm))
            _, _, st_inst, _ = run_a2a(lambda nm: RedQueue(100, inst, name=nm))
            return st_ewma, st_inst

        st_ewma, st_inst = run_once(benchmark, ablation)
        assert st_inst.drops_tail <= st_ewma.drops_tail
        # the instantaneous marker reacts to every excursion -> more marks
        assert st_inst.marks >= st_ewma.marks


class TestDelayedAcks:
    """A3 — delayed ACKs halve the ACK volume sharing the bottleneck."""

    def test_delack_halves_ack_pressure(self, benchmark):
        def ablation():
            q = lambda nm: SimpleMarkingQueue(100, 8, name=nm)
            _, _, st_on, _ = run_a2a(q, delack_segments=2)
            _, _, st_off, _ = run_a2a(q, delack_segments=1)
            return st_on, st_off

        st_on, st_off = run_once(benchmark, ablation)
        assert st_on.ack_arrivals < 0.7 * st_off.ack_arrivals


class TestDctcpGain:
    """A4 — DCTCP's g controls how fast α adapts; any sane g must keep
    the marking queue loss-free and the completion times close."""

    @pytest.mark.parametrize("g", [1 / 4, 1 / 16, 1 / 64])
    def test_g_sensitivity(self, benchmark, g):
        def ablation():
            sim_finish, lat, st, done = run_a2a(
                lambda nm: SimpleMarkingQueue(100, 8, name=nm),
                variant=TcpVariant.DCTCP,
            )
            return sim_finish, st

        finish, st = run_once(benchmark, ablation)
        assert st.drops_early == 0
        assert finish < 0.5


class TestEctSynAblation:
    """A7 — host-side ECN+ (ECT-capable SYNs) vs the paper's switch-side
    protection: both eliminate SYN losses under an aggressive default
    AQM; the switch-side patch needs no end-host change."""

    def test_ect_syn_vs_protection(self, benchmark):
        from repro.tcp import TcpConfig

        def ablation():
            params = RedParams(min_th=2, max_th=6, max_p=1.0, gentle=False,
                               use_instantaneous=True, ecn=True)
            qf = lambda nm: RedQueue(100, params, name=nm)

            sim_stats = {}
            # stock hosts, stock AQM: SYNs exposed
            _, _, st, flows = run_a2a(qf)
            sim_stats["stock"] = (st, sum(f.syn_retries for f in flows))
            # host-side fix: ECT SYNs
            sim2 = Simulator()
            spec = build_single_rack(sim2, N_HOSTS, qf, host_qdisc=qf,
                                     link_rate_bps=gbps(1), link_delay_s=us(20))
            done = []
            all_to_all(sim2, spec.hosts, FLOW_BYTES,
                       TcpConfig(variant=TcpVariant.ECN, ect_syn=True),
                       on_done=lambda r: done.append(r), stagger=0.001)
            sim2.run(until=120.0)
            st2 = spec.network.aggregate_switch_stats()
            sim_stats["ect-syn"] = (st2, sum(f.syn_retries for f in done))
            # switch-side fix: ACK+SYN protection
            prot = lambda nm: RedQueue(
                100, params.with_protection(ProtectionMode.ACK_SYN), name=nm)
            _, _, st3, flows3 = run_a2a(prot)
            sim_stats["protected"] = (st3, sum(f.syn_retries for f in flows3))
            return sim_stats

        stats = run_once(benchmark, ablation)
        assert stats["ect-syn"][0].syn_drops == 0
        assert stats["protected"][0].syn_drops == 0
        # both fixes leave no SYN retransmissions
        assert stats["ect-syn"][1] == 0
        assert stats["protected"][1] == 0


class TestCodelGenerality:
    """A6 — "RED and any other AQM queue that supports ECN" (paper,
    Section II): the ACK-drop pathology and the protection patch both
    reproduce on CoDel, a delay-based AQM the paper never ran."""

    def test_codel_drops_acks_and_protection_fixes_it(self, benchmark):
        from repro.core import CodelParams, CodelQueue

        def ablation():
            default = CodelParams(target_s=us(100), interval_s=us(1000))
            protected = CodelParams(target_s=us(100), interval_s=us(1000),
                                    protection=ProtectionMode.ACK_SYN)
            _, _, st_default, _ = run_a2a(
                lambda nm: CodelQueue(200, default, name=nm))
            _, _, st_protected, _ = run_a2a(
                lambda nm: CodelQueue(200, protected, name=nm))
            return st_default, st_protected

        st_default, st_protected = run_once(benchmark, ablation)
        # Same asymmetry as RED: ECT data marked, non-ECT ACKs dropped...
        assert st_default.marks > 0
        assert st_default.ack_drops > 0
        # ...and the paper's patch closes it.
        assert st_protected.ack_drops < st_default.ack_drops
        assert st_protected.protected > 0


class TestBufferDepthSweep:
    """A5 — the Bufferbloat curve: DropTail latency grows with buffer
    depth; marking latency does not."""

    def test_bufferbloat_curve(self, benchmark):
        from repro.core import DropTail

        def ablation():
            out = {}
            for depth in (50, 400, 1600):
                _, lat_dt, _, _ = run_a2a(
                    lambda nm, d=depth: DropTail(d, name=nm),
                    variant=TcpVariant.RENO)
                _, lat_mk, _, _ = run_a2a(
                    lambda nm, d=depth: SimpleMarkingQueue(d, 8, name=nm),
                    variant=TcpVariant.DCTCP)
                out[depth] = (lat_dt, lat_mk)
            return out

        curve = run_once(benchmark, ablation)
        # DropTail: latency strictly grows with depth (Bufferbloat).
        assert curve[50][0] < curve[400][0] < curve[1600][0]
        # Marking: flat within 3x across a 32x depth range.
        mk = [curve[d][1] for d in (50, 400, 1600)]
        assert max(mk) <= 3 * min(mk)
        # And marking at any depth beats DropTail at deep settings.
        assert max(mk) < curve[1600][0]
