"""Benchmarks for Figure 3 (exp ids F3a, F3b): cluster throughput per
node vs RED target delay, normalized to DropTail-shallow."""

from repro.experiments.figures import fig3_throughput, render_figure
from repro.tcp import TcpVariant

from conftest import run_once


def test_fig3a(benchmark, bench_scale, bench_seed):
    """F3a — shallow buffers.

    Shape assertions: ACK+SYN and marking sustain DropTail-level (or
    better) throughput across the whole sweep, and their best point beats
    the baseline (the paper's ~10% boost); RED-default never beats them
    at the aggressive end.
    """
    fig = run_once(benchmark, fig3_throughput, False, bench_scale, bench_seed)
    for variant in (TcpVariant.ECN, TcpVariant.DCTCP):
        marking = fig.series[f"{variant}/marking"]
        default = fig.series[f"{variant}/red-default"]
        assert min(marking) >= 0.90
        assert max(marking) >= 1.0   # at least full DropTail throughput
        # aggressive end: marking >= default (ACK drops cost default)
        assert marking[0] >= default[0] - 0.02
    assert render_figure(fig)


def test_fig3b(benchmark, bench_scale, bench_seed):
    """F3b — deep buffers.

    Shape assertions: with correct marking, deep buffers add nothing —
    throughput matches the shallow marking results (the paper's
    commodity-switch claim is asserted cross-figure in the claims
    report; here we check the deep marking series is flat and >= 0.9).
    """
    fig = run_once(benchmark, fig3_throughput, True, bench_scale, bench_seed)
    assert "droptail-deep" in fig.references
    for variant in (TcpVariant.ECN, TcpVariant.DCTCP):
        marking = fig.series[f"{variant}/marking"]
        assert min(marking) >= 0.90
        spread = max(marking) - min(marking)
        assert spread <= 0.15  # robust/flat across target delays
    assert render_figure(fig)
