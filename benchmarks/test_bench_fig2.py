"""Benchmarks for Figure 2 (exp ids F2a, F2b): Hadoop runtime vs RED
target delay, normalized to DropTail-shallow."""

from repro.experiments.figures import fig2_runtime, render_figure
from repro.tcp import TcpVariant

from conftest import run_once


def _common_checks(fig):
    assert len(fig.series) == 8  # 2 variants x (3 protections + marking)
    for vals in fig.series.values():
        assert len(vals) == len(fig.delays)
        assert all(v > 0 for v in vals)


def test_fig2a(benchmark, bench_scale, bench_seed):
    """F2a — shallow buffers.

    Shape assertions: the marking scheme is robust (never materially
    slower than DropTail at any target delay) and at least matches the
    best RED-default point; RED-default's worst point is its most
    aggressive setting or it is never better than marking.
    """
    fig = run_once(benchmark, fig2_runtime, False, bench_scale, bench_seed)
    _common_checks(fig)
    for variant in (TcpVariant.ECN, TcpVariant.DCTCP):
        marking = fig.series[f"{variant}/marking"]
        default = fig.series[f"{variant}/red-default"]
        assert max(marking) <= 1.10          # robustness across the sweep
        assert min(marking) <= min(default) + 0.02
    assert render_figure(fig)


def test_fig2b(benchmark, bench_scale, bench_seed):
    """F2b — deep buffers, with the DropTail-deep dashed reference.

    Shape assertions: protected/marking configurations reach (or beat)
    the DropTail-deep reference runtime, as the paper reports.
    """
    fig = run_once(benchmark, fig2_runtime, True, bench_scale, bench_seed)
    _common_checks(fig)
    assert "droptail-deep" in fig.references
    ref = fig.references["droptail-deep"]
    for variant in (TcpVariant.ECN, TcpVariant.DCTCP):
        assert min(fig.series[f"{variant}/marking"]) <= ref + 0.02
        assert min(fig.series[f"{variant}/red-ack+syn"]) <= ref + 0.05
    assert render_figure(fig)
