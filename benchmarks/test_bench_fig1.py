"""Benchmark for Figure 1 (exp id F1): the congested-queue snapshot and
the ACK-drop asymmetry it illustrates."""

from repro.experiments.figures import fig1_queue_snapshot, render_fig1

from conftest import run_once


def test_fig1(benchmark, bench_scale, bench_seed):
    """F1 — queue snapshot under default RED/ECN during the shuffle.

    Shape assertions:

    * the AQM produced early drops, and ECT data survived them (its drop
      rate stays near zero because it is marked instead);
    * the busiest observed queue is dominated by ECT data packets;
    * pure ACKs were early-dropped at a higher rate than ECT data — the
      disproportionality of the paper's Section II.
    """
    data = run_once(benchmark, fig1_queue_snapshot, bench_scale, bench_seed)

    assert data.early_drops > 0
    assert data.marks > 0
    assert data.ect_drop_rate < 0.02
    assert data.ack_drop_rate > data.ect_drop_rate
    assert data.snapshot.qlen_packets > 0
    assert data.snapshot.ect_fraction > 0.5

    text = render_fig1(data)
    assert "snapshot" in text
