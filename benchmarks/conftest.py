"""Shared benchmark configuration.

Benchmarks regenerate every table and figure of the paper at a reduced
dataset scale so the whole suite completes in minutes. Set
``REPRO_BENCH_SCALE=1.0`` to run the full 256 MB reference configuration
(the one EXPERIMENTS.md reports).

The figure benchmarks share one grid sweep per buffer depth through the
in-process cache in :mod:`repro.experiments.grids`: the first figure
benchmark of a depth pays the sweep cost, the rest project cached cells.
Assertions are limited to scale-robust *shape* properties (orderings,
reduction bands) — absolute numbers are not the reproduction target.
"""

import os

import pytest

#: Dataset scale for benchmark runs (1.0 = 256 MB Terasort).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.125"))

#: Seed shared by every benchmark run.
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "42"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Dataset scale factor for this benchmark session."""
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_seed() -> int:
    """Seed for this benchmark session."""
    return BENCH_SEED


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Simulation cells are deterministic and expensive; statistical rounds
    would only repeat identical work.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
